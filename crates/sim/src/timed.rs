//! Measured protocol rounds: the *real* protocol over the *simulated*
//! network.
//!
//! [`crate::round`] prices a round analytically from operation counts —
//! fast at any scale but blind to what the implementation actually
//! sends. This module instead runs the full sans-IO session protocol
//! over a [`SimTransport`], so every phase timing is derived from the
//! **actual serialized envelope bytes** flowing through the
//! [`lsa_net`] discrete-event network: headers, survivor announcements
//! and padding included, with per-channel queueing at every endpoint.
//!
//! Use this to validate the analytic model at feasible scales and to
//! time concrete deployments of moderate size; use [`crate::round`] for
//! paper-scale (`N = 100`, `d ≈ 10^6`) sweeps.

use lsa_field::Field;
use lsa_net::{Duplex, NetworkConfig};
use lsa_protocol::federation::SecureAggregator;
use lsa_protocol::telemetry::RoundReport;
use lsa_protocol::topology::{GroupTopology, GroupedFederation};
use lsa_protocol::transport::{PhaseTiming, SimTransport};
use lsa_protocol::{
    run_sync_round_over, DropoutSchedule, LsaConfig, ProtocolError, SyncRoundOutput,
};
use rand::Rng;

/// One measured synchronous round: the exact aggregate plus the round's
/// [`RoundReport`], with phase timings derived from serialized envelope
/// sizes.
#[derive(Debug, Clone)]
pub struct TimedRoundOutput<F> {
    /// The protocol output (aggregate + survivors), byte-identical to a
    /// [`lsa_protocol::run_sync_round`] run with the same seed.
    pub output: SyncRoundOutput<F>,
    /// The round's telemetry: per-phase simulated wall-clock
    /// (`"offline"`, `"upload"`, `"announce"`, `"recovery"`), traffic
    /// totals and event counters. Each phase's `end` is the *last*
    /// arrival of the phase; see [`TimedRoundOutput::total`] for the
    /// protocol-semantic round time.
    pub report: RoundReport,
    /// Round completion time (s): the server proceeds as soon as the
    /// `U`-th aggregated share arrives (Algorithm 1 line 24 — matching
    /// the analytic model's `kth_completion(U−1)`), even while straggler
    /// shares are still in flight. The full drain time of every message
    /// is `report.phases.last().end`.
    pub total: f64,
}

impl<F> TimedRoundOutput<F> {
    /// The timing of the named phase.
    pub fn phase(&self, label: &str) -> Option<&PhaseTiming> {
        self.report.phase(label)
    }

    /// Total serialized bytes moved across all phases (payload plus
    /// framing — zero framing on the simulated network).
    pub fn total_bytes(&self) -> usize {
        self.report.total_bytes()
    }
}

/// Run one synchronous LightSecAgg round over the discrete-event
/// network, returning the aggregate and measured per-phase timings.
///
/// # Errors
///
/// Propagates any [`ProtocolError`] from the session driver.
///
/// # Panics
///
/// Panics if `net.clients < cfg.n()` (the network must have a channel
/// per user).
pub fn run_timed_sync_round<F: Field, R: Rng + ?Sized>(
    cfg: LsaConfig,
    models: &[Vec<F>],
    dropouts: &DropoutSchedule,
    rng: &mut R,
    net: NetworkConfig,
    duplex: Duplex,
) -> Result<TimedRoundOutput<F>, ProtocolError> {
    assert!(
        net.clients >= cfg.n(),
        "network has {} client channels but the protocol needs {}",
        net.clients,
        cfg.n()
    );
    let mut transport = SimTransport::new(net, duplex);
    let output = run_sync_round_over(cfg, models, dropouts, rng, &mut transport)?;
    let report = RoundReport::of_transport::<F, SimTransport>(&transport, 0);
    // The server decodes at the U-th aggregated-share arrival; helpers
    // beyond U keep transmitting but don't gate the round (the analytic
    // model's `kth_completion(u - 1)` — see sim::round).
    let total = report
        .phase("recovery")
        .filter(|p| p.messages >= cfg.u())
        .map_or(transport.elapsed(), |p| p.kth_completion(cfg.u() - 1));
    Ok(TimedRoundOutput {
        output,
        total,
        report,
    })
}

/// Run one full-participation **grouped** (tree-topology) round
/// ([`lsa_protocol::topology`]) over the discrete-event network: every
/// leaf group runs over its own simulated link (its own aggregator
/// node, Turbo-Aggregate style), so the per-phase byte/timing records
/// quantify exactly what the topology saves.
///
/// The per-leaf phase records are merged label-by-label
/// ([`RoundReport::merge`]): message and byte counts are summed across
/// leaves, while each phase's `end` is the moment the *slowest* leaf
/// finished it — subtrees run concurrently in a real hierarchy, so the
/// merged end is the root's critical path. `total` is the merged
/// recovery end (a conservative bound that ignores straggler shares
/// *within* a leaf).
///
/// The server-side compute behind those arrivals — the per-subtree
/// one-shot decodes inside `finish_round` — runs on the scoped worker
/// pool (`LSA_THREADS`), so the wall-clock cost of this driver drops on
/// multi-core hosts while the simulated network timings (and the
/// aggregate, bit-for-bit) stay identical.
///
/// # Errors
///
/// Propagates any [`ProtocolError`] from the grouped federation.
///
/// # Panics
///
/// Panics if `net.clients` is smaller than the largest leaf group:
/// each leaf's cloned network indexes channels by leaf-local id, so a
/// `net` sized for the largest leaf suffices (sizing for `n`, the old
/// flat calling convention, always works too).
pub fn run_timed_grouped_round<F: Field>(
    topology: &GroupTopology,
    models: &[Vec<F>],
    seed: u64,
    net: NetworkConfig,
    duplex: Duplex,
) -> Result<TimedRoundOutput<F>, ProtocolError> {
    let largest_leaf = topology
        .configs()
        .iter()
        .map(lsa_protocol::LsaConfig::n)
        .max()
        .unwrap_or(0);
    assert!(
        net.clients >= largest_leaf,
        "network has {} client channels but the largest leaf group needs {}",
        net.clients,
        largest_leaf
    );
    assert_eq!(models.len(), topology.n(), "one model per client");
    let mut grouped =
        GroupedFederation::new(topology.clone(), SimTransport::new(net, duplex), seed)?;
    let cohort: Vec<usize> = (0..topology.n()).collect();
    grouped.open_round(&cohort)?;
    for (id, model) in models.iter().enumerate() {
        grouped.submit(id, model)?;
    }
    let outcome = grouped.finish_round()?;
    let report = grouped.round_report().unwrap_or_default();
    let total = report.phase("recovery").map_or_else(
        || report.phases.last().map_or(0.0, |p| p.end),
        |p: &PhaseTiming| p.end,
    );
    Ok(TimedRoundOutput {
        output: SyncRoundOutput {
            aggregate: outcome.aggregate,
            survivors: outcome.contributors,
        },
        report,
        total,
    })
}

/// Convenience wrapper for the supported two-level shape: build
/// `GroupTopology::hierarchical(n, branching, ..)` and run one timed
/// round ([`run_timed_grouped_round`]) over it.
///
/// # Errors
///
/// Propagates invalid topology parameters and any [`ProtocolError`]
/// from the federation.
///
/// # Panics
///
/// As [`run_timed_grouped_round`].
#[allow(clippy::too_many_arguments)]
pub fn run_timed_hierarchical_round<F: Field>(
    n: usize,
    branching: &[usize],
    t_frac: f64,
    u_frac: f64,
    models: &[Vec<F>],
    seed: u64,
    net: NetworkConfig,
    duplex: Duplex,
) -> Result<TimedRoundOutput<F>, ProtocolError> {
    let topology = GroupTopology::hierarchical(n, branching, t_frac, u_frac, models[0].len())?;
    run_timed_grouped_round(&topology, models, seed, net, duplex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_field::Fp61;
    use lsa_protocol::run_sync_round;
    use lsa_protocol::wire::Envelope;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn models(n: usize, d: usize, seed: u64) -> Vec<Vec<Fp61>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| lsa_field::ops::random_vector(d, &mut rng))
            .collect()
    }

    #[test]
    fn timed_round_matches_mem_transport_aggregate() {
        // Acceptance: a full round with dropouts completes over
        // SimTransport with byte-identical aggregates to the legacy
        // (MemTransport) driver under the same seed.
        let cfg = LsaConfig::new(6, 2, 4, 17).unwrap();
        let ms = models(6, 17, 1);
        let sched = DropoutSchedule {
            before_upload: vec![1],
            after_upload: vec![4],
        };
        let legacy = run_sync_round(cfg, &ms, &sched, &mut StdRng::seed_from_u64(9)).unwrap();
        let timed = run_timed_sync_round(
            cfg,
            &ms,
            &sched,
            &mut StdRng::seed_from_u64(9),
            NetworkConfig::paper_default(6),
            Duplex::Full,
        )
        .unwrap();
        assert_eq!(timed.output.aggregate, legacy.aggregate);
        assert_eq!(timed.output.survivors, legacy.survivors);
        assert!(timed.total > 0.0);
    }

    #[test]
    fn phase_bytes_equal_serialized_envelope_sizes() {
        // The offline phase moves exactly N·(N−1) coded-share envelopes;
        // the upload phase exactly N masked models. The transport's
        // byte accounting must equal the envelopes' wire lengths.
        let n = 5;
        let cfg = LsaConfig::new(n, 1, 3, 10).unwrap();
        let ms = models(n, 10, 2);
        let timed = run_timed_sync_round(
            cfg,
            &ms,
            &DropoutSchedule::none(),
            &mut StdRng::seed_from_u64(3),
            NetworkConfig::paper_default(n),
            Duplex::Full,
        )
        .unwrap();

        let share_env: Envelope<Fp61> = Envelope::CodedMaskShare(lsa_protocol::CodedMaskShare {
            from: 0,
            to: 1,
            group: 0,
            round: 0,
            payload: vec![Fp61::ZERO; cfg.segment_len()],
        });
        let offline = timed.phase("offline").unwrap();
        assert_eq!(offline.messages, n * (n - 1));
        assert_eq!(offline.bytes, n * (n - 1) * share_env.wire_len());

        let model_env: Envelope<Fp61> = Envelope::MaskedModel(lsa_protocol::MaskedModel {
            from: 0,
            group: 0,
            round: 0,
            payload: vec![Fp61::ZERO; cfg.padded_len()],
        });
        let upload = timed.phase("upload").unwrap();
        assert_eq!(upload.messages, n);
        assert_eq!(upload.bytes, n * model_env.wire_len());
    }

    #[test]
    fn server_proceeds_at_u_arrivals_not_last() {
        // 8 helpers but U = 5: the round completes at the 5th share
        // arrival; the 3 straggler shares drain afterwards
        let n = 8;
        let cfg = LsaConfig::new(n, 2, 5, 400).unwrap();
        let ms = models(n, 400, 8);
        let timed = run_timed_sync_round(
            cfg,
            &ms,
            &DropoutSchedule::none(),
            &mut StdRng::seed_from_u64(9),
            NetworkConfig::mbps(n, 10.0, 20.0, 0.001),
            Duplex::Full,
        )
        .unwrap();
        let recovery = timed.phase("recovery").unwrap();
        assert_eq!(recovery.messages, n); // all helpers transmit...
        assert_eq!(timed.total, recovery.kth_completion(4)); // ...U gates
        assert!(
            timed.total < recovery.end,
            "U-th arrival {} should precede last {}",
            timed.total,
            recovery.end
        );
    }

    #[test]
    fn larger_models_take_longer_on_the_wire() {
        let cfg_small = LsaConfig::new(4, 1, 3, 8).unwrap();
        let cfg_big = LsaConfig::new(4, 1, 3, 800).unwrap();
        let net = NetworkConfig::mbps(4, 10.0, 100.0, 0.001);
        let t_small = run_timed_sync_round(
            cfg_small,
            &models(4, 8, 4),
            &DropoutSchedule::none(),
            &mut StdRng::seed_from_u64(5),
            net,
            Duplex::Full,
        )
        .unwrap();
        let t_big = run_timed_sync_round(
            cfg_big,
            &models(4, 800, 4),
            &DropoutSchedule::none(),
            &mut StdRng::seed_from_u64(5),
            net,
            Duplex::Full,
        )
        .unwrap();
        assert!(t_big.total > t_small.total);
        assert!(t_big.total_bytes() > t_small.total_bytes());
    }

    #[test]
    fn grouped_timed_round_recovers_exact_sum() {
        let topo = GroupTopology::uniform(8, 2, 0.25, 0.75, 12).unwrap();
        let ms = models(8, 12, 11);
        let timed =
            run_timed_grouped_round(&topo, &ms, 3, NetworkConfig::paper_default(8), Duplex::Full)
                .unwrap();
        let mut want = vec![Fp61::ZERO; 12];
        for m in &ms {
            lsa_field::ops::add_assign(&mut want, m);
        }
        assert_eq!(timed.output.aggregate, want);
        assert_eq!(timed.output.survivors.len(), 8);
        assert!(timed.total > 0.0);
    }

    #[test]
    fn hierarchical_timed_round_recovers_exact_sum() {
        // two-level: 2 super-groups x 2 leaf groups x 4 clients; every
        // phase priced per leaf link, aggregate exact
        let n = 16;
        let d = 10;
        let ms = models(n, d, 21);
        let timed = run_timed_hierarchical_round(
            n,
            &[2, 2],
            0.25,
            0.75,
            &ms,
            6,
            NetworkConfig::paper_default(n),
            Duplex::Full,
        )
        .unwrap();
        let mut want = vec![Fp61::ZERO; d];
        for m in &ms {
            lsa_field::ops::add_assign(&mut want, m);
        }
        assert_eq!(timed.output.aggregate, want);
        assert_eq!(timed.output.survivors.len(), n);
        assert!(timed.total > 0.0);
        // each of the 4 leaves of 4 clients moves 4*3 offline shares;
        // the merged record pools them
        assert_eq!(timed.phase("offline").unwrap().messages, 4 * 4 * 3);
    }

    #[test]
    fn hierarchical_round_accepts_leaf_sized_network() {
        // channels are leaf-local: a net sized for the largest leaf (4)
        // must serve a 16-client two-level tree
        let n = 16;
        let d = 6;
        let ms = models(n, d, 23);
        let timed = run_timed_hierarchical_round(
            n,
            &[2, 2],
            0.25,
            0.75,
            &ms,
            7,
            NetworkConfig::paper_default(4),
            Duplex::Full,
        )
        .unwrap();
        let mut want = vec![Fp61::ZERO; d];
        for m in &ms {
            lsa_field::ops::add_assign(&mut want, m);
        }
        assert_eq!(timed.output.aggregate, want);
    }

    #[test]
    fn grouping_cuts_offline_traffic_on_the_wire() {
        // same N and d, measured over the same simulated network: the
        // grouped topology's offline phase moves Σ n_g(n_g−1) messages
        // instead of N(N−1) — the bench claim, pinned in miniature
        let n = 16;
        let d = 8;
        let ms = models(n, d, 13);
        let flat_cfg = LsaConfig::new(n, 4, 12, d).unwrap();
        let flat = run_timed_grouped_round(
            &GroupTopology::flat(flat_cfg),
            &ms,
            5,
            NetworkConfig::paper_default(n),
            Duplex::Full,
        )
        .unwrap();
        let grouped = run_timed_grouped_round(
            &GroupTopology::uniform(n, 4, 0.25, 0.75, d).unwrap(),
            &ms,
            5,
            NetworkConfig::paper_default(n),
            Duplex::Full,
        )
        .unwrap();
        assert_eq!(flat.output.aggregate, grouped.output.aggregate);
        let flat_offline = flat.phase("offline").unwrap();
        let grouped_offline = grouped.phase("offline").unwrap();
        assert_eq!(flat_offline.messages, n * (n - 1));
        assert_eq!(grouped_offline.messages, 4 * 4 * 3);
        assert!(
            grouped_offline.bytes < flat_offline.bytes,
            "grouped {} vs flat {}",
            grouped_offline.bytes,
            flat_offline.bytes
        );
    }

    #[test]
    fn half_duplex_is_slower_offline() {
        // the all-to-all coded-share exchange serializes sends/receives
        // under half duplex — the §6 ablation, now measured from real
        // envelope bytes
        let cfg = LsaConfig::new(6, 2, 4, 600).unwrap();
        let ms = models(6, 600, 6);
        let net = NetworkConfig::mbps(6, 10.0, 100.0, 0.0);
        let full = run_timed_sync_round(
            cfg,
            &ms,
            &DropoutSchedule::none(),
            &mut StdRng::seed_from_u64(7),
            net,
            Duplex::Full,
        )
        .unwrap();
        let half = run_timed_sync_round(
            cfg,
            &ms,
            &DropoutSchedule::none(),
            &mut StdRng::seed_from_u64(7),
            net,
            Duplex::Half,
        )
        .unwrap();
        let f = full.phase("offline").unwrap().duration();
        let h = half.phase("offline").unwrap().duration();
        assert!(h > f * 1.2, "full {f} vs half {h}");
    }
}
