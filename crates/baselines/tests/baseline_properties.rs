//! Property-based tests of the SecAgg/SecAgg+ baselines: exact
//! aggregate recovery under random graphs and random dropout patterns,
//! or a clean error — never a silently wrong sum.

use lsa_baselines::{run_secagg_round, CommunicationGraph, SecAggConfig};
use lsa_field::{Field, Fp61};
use lsa_protocol::DropoutSchedule;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn models(n: usize, d: usize, seed: u64) -> Vec<Vec<Fp61>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| lsa_field::ops::random_vector(d, &mut rng))
        .collect()
}

fn sum_of(models: &[Vec<Fp61>], who: &[usize]) -> Vec<Fp61> {
    let mut acc = vec![Fp61::ZERO; models[0].len()];
    for &i in who {
        lsa_field::ops::add_assign(&mut acc, &models[i]);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SecAgg over the complete graph recovers the exact sum of included
    /// users for any dropout pattern within budget.
    #[test]
    fn secagg_exact_under_random_dropouts(
        n in 4usize..9,
        seed in any::<u64>(),
    ) {
        let t = 1usize;
        let d = 1 + (seed % 7) as usize;
        let cfg = SecAggConfig::secagg(n, t, d).unwrap();
        let ms = models(n, d, seed);

        // at most n − (t+1) total dropouts so every secret keeps a quorum
        let max_drop = n - (t + 1);
        let drop_count = (seed as usize / 3) % (max_drop + 1);
        let mut ids: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (seed as usize).wrapping_mul(i + 13) % (i + 1);
            ids.swap(i, j);
        }
        let dropped = &ids[..drop_count];
        let split = drop_count / 2;
        let sched = DropoutSchedule {
            before_upload: dropped[..split].to_vec(),
            after_upload: dropped[split..].to_vec(),
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let out = run_secagg_round(&cfg, &ms, &sched, &mut rng).unwrap();
        let want = sum_of(&ms, &out.included);
        prop_assert_eq!(out.aggregate, want);
        // included + dropped partitions [N]
        prop_assert_eq!(out.included.len() + out.dropped.len(), n);
    }

    /// SecAgg+ over Harary graphs of any even degree recovers exactly
    /// when nobody drops.
    #[test]
    fn secagg_plus_exact_no_dropout(
        n in 6usize..14,
        k in 2usize..6,
        seed in any::<u64>(),
    ) {
        let graph = CommunicationGraph::harary(n, k);
        let t = 1usize;
        prop_assume!(t <= graph.degree());
        let d = 3;
        let cfg = SecAggConfig::with_graph(n, t, d, graph).unwrap();
        let ms = models(n, d, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        let out = run_secagg_round(&cfg, &ms, &DropoutSchedule::none(), &mut rng).unwrap();
        let all: Vec<usize> = (0..n).collect();
        prop_assert_eq!(out.aggregate, sum_of(&ms, &all));
        // no dropouts ⇒ zero pairwise reconstructions
        prop_assert_eq!(out.stats.prg_expansions, n);
    }

    /// The server's measured PRG work always equals the Eq. (1)
    /// accounting: |U₁| self masks + Σ_dropped |U₁ ∩ nbr(j)| pairwise.
    #[test]
    fn prg_accounting_matches_eq1(
        n in 5usize..10,
        seed in any::<u64>(),
    ) {
        let cfg = SecAggConfig::secagg(n, 1, 2).unwrap();
        let ms = models(n, 2, seed);
        let drop = (seed as usize % (n - 2)).min(n - 3);
        let sched = DropoutSchedule::after_upload((0..drop).collect());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let out = run_secagg_round(&cfg, &ms, &sched, &mut rng).unwrap();
        let included = out.included.len();
        prop_assert_eq!(
            out.stats.prg_expansions,
            included + out.dropped.len() * included
        );
        prop_assert_eq!(
            out.stats.secrets_reconstructed,
            included + out.dropped.len()
        );
    }
}
