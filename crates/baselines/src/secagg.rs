//! The SecAgg protocol (Bonawitz et al., CCS 2017) as described in §3 of
//! the LightSecAgg paper, generalised over a communication graph so that
//! SecAgg+ (Bell et al., CCS 2020) is the same engine on a sparse graph.
//!
//! Per round:
//!
//! 1. **Key advertisement** — every user publishes a DH public key.
//! 2. **Pairwise agreement + secret sharing** — every neighbour pair
//!    `(i,j)` derives the seed `a_{i,j}`; every user Shamir-shares its
//!    self-mask seed `b_i` *and* its DH secret key `sk_i` among its
//!    neighbours with threshold `t`.
//! 3. **Masking** — user `i` uploads
//!    `~x_i = x_i + PRG(b_i) + Σ_{j>i} PRG(a_{i,j}) − Σ_{j<i} PRG(a_{j,i})`
//!    (neighbours only).
//! 4. **Recovery** — for every *included* user the server reconstructs
//!    `b_i` (and subtracts `PRG(b_i)`); for every *dropped* user it
//!    reconstructs `sk_i`, re-derives that user's pairwise seeds and
//!    cancels the orphaned pairwise masks (Eq. 1 of the paper). This last
//!    step is the `O(N²·d)` bottleneck LightSecAgg removes.

use crate::graph::CommunicationGraph;
use crate::limbs;
use crate::BaselineError;
use lsa_coding::{shamir::Share, ShamirScheme};
use lsa_crypto::dh::{self, KeyPair, PublicKey, SecretKey};
use lsa_crypto::{FieldPrg, Seed};
use lsa_field::Field;
use lsa_protocol::MaskedModel;
use rand::Rng;
use std::collections::BTreeMap;

/// Configuration shared by SecAgg and SecAgg+.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecAggConfig {
    n: usize,
    threshold: usize,
    d: usize,
    graph: CommunicationGraph,
}

impl SecAggConfig {
    /// Classic SecAgg: complete graph, global Shamir threshold `t`
    /// (privacy against `t` colluders; reconstruction needs `t+1`
    /// neighbour shares).
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidConfig`] unless
    /// `n ≥ 2`, `d ≥ 1` and `t < n − 1` (each user has `n−1` share
    /// holders).
    pub fn secagg(n: usize, t: usize, d: usize) -> Result<Self, BaselineError> {
        Self::with_graph(n, t, d, CommunicationGraph::complete(n))
    }

    /// SecAgg+ with the default `O(log N)` degree and a majority local
    /// threshold `k/2` (the sparse-graph analogue of the paper's
    /// `T = N/2` setting).
    ///
    /// # Errors
    ///
    /// See [`Self::with_graph`].
    pub fn secagg_plus(n: usize, d: usize) -> Result<Self, BaselineError> {
        let graph = CommunicationGraph::secagg_plus_default(n);
        let t = graph.degree() / 2;
        Self::with_graph(n, t, d, graph)
    }

    /// Fully custom configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidConfig`] on parameter violations.
    pub fn with_graph(
        n: usize,
        threshold: usize,
        d: usize,
        graph: CommunicationGraph,
    ) -> Result<Self, BaselineError> {
        if n < 2 || d == 0 {
            return Err(BaselineError::InvalidConfig(format!(
                "need n >= 2 and d >= 1, got n={n}, d={d}"
            )));
        }
        if graph.n() != n {
            return Err(BaselineError::InvalidConfig(
                "graph size does not match n".into(),
            ));
        }
        // each secret has degree+1 holders (the neighbours plus the
        // owner itself, as in the paper's "2 out of 3" Figure 2 example)
        if threshold > graph.degree() {
            return Err(BaselineError::InvalidConfig(format!(
                "threshold {threshold} must not exceed the graph degree {}",
                graph.degree()
            )));
        }
        Ok(Self {
            n,
            threshold,
            d,
            graph,
        })
    }

    /// Number of users.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Shamir threshold `t`.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Model dimension.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The communication graph.
    pub fn graph(&self) -> &CommunicationGraph {
        &self.graph
    }
}

/// Key advertisement message (round 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyAdvertisement {
    /// Advertising user.
    pub from: usize,
    /// Their DH public key.
    pub public_key: PublicKey,
}

/// Secret-share delivery message (round 1): `from`'s shares of `b_from`
/// and `sk_from` destined to neighbour `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecretShares<F> {
    /// Owner of the shared secrets.
    pub from: usize,
    /// Receiving neighbour.
    pub to: usize,
    /// Shares of the seed `b_from` (one per 16-bit limb).
    pub b_share: Vec<Share<F>>,
    /// Shares of the secret key `sk_from` (one per limb).
    pub sk_share: Vec<Share<F>>,
}

/// What a surviving helper reveals during recovery: for included users
/// the `b` share, for dropped users the `sk` share — never both for the
/// same owner (the SecAgg privacy invariant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryShares<F> {
    /// The responding helper.
    pub from: usize,
    /// `(owner, limb shares of b_owner)` for included owners.
    pub b_shares: Vec<(usize, Vec<Share<F>>)>,
    /// `(owner, limb shares of sk_owner)` for dropped owners.
    pub sk_shares: Vec<(usize, Vec<Share<F>>)>,
}

/// The limb shares a holder keeps for one owner: `(b` shares, `sk`
/// shares`)`.
type HeldShares<F> = (Vec<Share<F>>, Vec<Share<F>>);

/// A SecAgg/SecAgg+ user.
#[derive(Debug, Clone)]
pub struct SecAggClient<F> {
    id: usize,
    cfg: SecAggConfig,
    round: u64,
    keypair: KeyPair,
    b_seed: Seed,
    directory: BTreeMap<usize, PublicKey>,
    /// Shares this client holds of other users' secrets, keyed by owner.
    held: BTreeMap<usize, HeldShares<F>>,
}

impl<F: Field> SecAggClient<F> {
    /// Create the client for user `id` in round `round`, generating its
    /// DH key pair and self-mask seed.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidConfig`] if `id` is out of range.
    pub fn new<R: Rng + ?Sized>(
        id: usize,
        cfg: SecAggConfig,
        round: u64,
        rng: &mut R,
    ) -> Result<Self, BaselineError> {
        if id >= cfg.n() {
            return Err(BaselineError::InvalidConfig(format!(
                "client id {id} out of range for N={}",
                cfg.n()
            )));
        }
        Ok(Self {
            id,
            cfg,
            round,
            keypair: KeyPair::generate(rng),
            b_seed: Seed::random(rng),
            directory: BTreeMap::new(),
            held: BTreeMap::new(),
        })
    }

    /// This client's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Round 0: advertise the public key.
    pub fn advertise(&self) -> KeyAdvertisement {
        KeyAdvertisement {
            from: self.id,
            public_key: self.keypair.public_key(),
        }
    }

    /// Install the public-key directory collected by the server.
    pub fn install_directory(&mut self, ads: &[KeyAdvertisement]) {
        for ad in ads {
            self.directory.insert(ad.from, ad.public_key);
        }
    }

    /// Round 1: Shamir-share `b_i` and `sk_i` among the holders — the
    /// neighbours *plus the owner itself* (the paper's Figure 2 uses a
    /// 2-out-of-3 sharing across all 3 users). Returns the messages for
    /// the neighbours; the own share is stored directly.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::Coding`] if the holder set is too small
    /// for the threshold.
    pub fn share_secrets<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> Result<Vec<SecretShares<F>>, BaselineError> {
        let holders = holders_of(self.cfg.graph(), self.id);
        let scheme = ShamirScheme::<F>::new(holders.len(), self.cfg.threshold())?;
        let b_limbs = limbs::bytes_to_limbs::<F>(&self.b_seed.0);
        let sk_limbs = limbs::u64_to_limbs::<F>(self.keypair.secret_key().expose());
        let b_holder = scheme.share_vector(&b_limbs, rng);
        let sk_holder = scheme.share_vector(&sk_limbs, rng);
        let mut out = Vec::with_capacity(holders.len() - 1);
        for (pos, &to) in holders.iter().enumerate() {
            if to == self.id {
                self.held
                    .insert(self.id, (b_holder[pos].clone(), sk_holder[pos].clone()));
            } else {
                out.push(SecretShares {
                    from: self.id,
                    to,
                    b_share: b_holder[pos].clone(),
                    sk_share: sk_holder[pos].clone(),
                });
            }
        }
        Ok(out)
    }

    /// Round 1 receive: store a neighbour's shares.
    ///
    /// # Errors
    ///
    /// * [`BaselineError::MisroutedShare`] if not addressed to this user;
    /// * [`BaselineError::NotNeighbors`] if the sender is not adjacent;
    /// * [`BaselineError::DuplicateMessage`] on re-delivery.
    pub fn receive_shares(&mut self, msg: SecretShares<F>) -> Result<(), BaselineError> {
        if msg.to != self.id {
            return Err(BaselineError::MisroutedShare {
                expected: self.id,
                got: msg.to,
            });
        }
        if !self.cfg.graph().are_neighbors(msg.from, self.id) {
            return Err(BaselineError::NotNeighbors(msg.from, self.id));
        }
        if self.held.contains_key(&msg.from) {
            return Err(BaselineError::DuplicateMessage(msg.from));
        }
        self.held.insert(msg.from, (msg.b_share, msg.sk_share));
        Ok(())
    }

    /// Round 2: mask and "upload" the local model.
    ///
    /// # Errors
    ///
    /// * [`BaselineError::InvalidConfig`] on model length mismatch;
    /// * [`BaselineError::MissingKey`] if a neighbour's public key is
    ///   unknown.
    pub fn mask_model(&self, model: &[F]) -> Result<MaskedModel<F>, BaselineError> {
        if model.len() != self.cfg.d() {
            return Err(BaselineError::InvalidConfig(format!(
                "model length {} != d = {}",
                model.len(),
                self.cfg.d()
            )));
        }
        let mut payload = model.to_vec();
        // self mask n_i = PRG(b_i)
        let self_mask: Vec<F> = FieldPrg::new(self.b_seed.derive(self.round)).expand(self.cfg.d());
        lsa_field::ops::add_assign(&mut payload, &self_mask);
        // pairwise masks with neighbours
        for j in self.cfg.graph().neighbors(self.id) {
            let pk = self.directory.get(&j).ok_or(BaselineError::MissingKey(j))?;
            let seed = self.keypair.agree(pk).derive(self.round);
            let pairwise: Vec<F> = FieldPrg::new(seed).expand(self.cfg.d());
            if self.id < j {
                lsa_field::ops::add_assign(&mut payload, &pairwise);
            } else {
                lsa_field::ops::sub_assign(&mut payload, &pairwise);
            }
        }
        Ok(MaskedModel {
            from: self.id,
            group: 0,
            round: self.round,
            payload,
        })
    }

    /// Round 3: reveal recovery shares for the sets the server announced.
    ///
    /// Owners appearing in both sets are rejected (a malicious server
    /// could otherwise unmask an individual model).
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::BothSharesRequested`] on overlap.
    pub fn recovery_shares(
        &self,
        included: &[usize],
        dropped: &[usize],
    ) -> Result<RecoveryShares<F>, BaselineError> {
        if let Some(&who) = included.iter().find(|i| dropped.contains(i)) {
            return Err(BaselineError::BothSharesRequested(who));
        }
        let mut b_shares = Vec::new();
        let mut sk_shares = Vec::new();
        for (&owner, (b, sk)) in &self.held {
            if included.contains(&owner) {
                b_shares.push((owner, b.clone()));
            } else if dropped.contains(&owner) {
                sk_shares.push((owner, sk.clone()));
            }
        }
        Ok(RecoveryShares {
            from: self.id,
            b_shares,
            sk_shares,
        })
    }
}

/// Counters for the server's recovery work — the quantities Table 1 and
/// Table 4 of the paper compare across protocols.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Number of length-`d` PRG expansions performed.
    pub prg_expansions: usize,
    /// Number of Shamir secrets reconstructed.
    pub secrets_reconstructed: usize,
}

/// Output of a SecAgg round.
#[derive(Debug, Clone)]
pub struct SecAggRoundOutput<F> {
    /// The aggregate `Σ_{i∈included} x_i`.
    pub aggregate: Vec<F>,
    /// Users whose models are included.
    pub included: Vec<usize>,
    /// Users treated as dropped.
    pub dropped: Vec<usize>,
    /// Server-side recovery work.
    pub stats: RecoveryStats,
}

/// The SecAgg server's recovery computation (Eq. 1).
///
/// `masked` maps included users to their uploads; `recovery` holds the
/// surviving helpers' revealed shares; `ads` is the key directory.
///
/// # Errors
///
/// Returns [`BaselineError::Coding`] when too few shares survive to
/// reconstruct some needed secret.
pub fn server_recover<F: Field>(
    cfg: &SecAggConfig,
    round: u64,
    masked: &BTreeMap<usize, Vec<F>>,
    dropped: &[usize],
    recovery: &[RecoveryShares<F>],
    ads: &[KeyAdvertisement],
) -> Result<SecAggRoundOutput<F>, BaselineError> {
    let included: Vec<usize> = masked.keys().copied().collect();
    let mut stats = RecoveryStats::default();
    let directory: BTreeMap<usize, PublicKey> =
        ads.iter().map(|a| (a.from, a.public_key)).collect();

    // Σ ~x_i
    let mut aggregate = lsa_field::ops::sum_vectors(masked.values().map(Vec::as_slice))
        .ok_or_else(|| BaselineError::InvalidConfig("no masked models".into()))?;

    // Index recovery shares: owner -> collected limb shares.
    let mut b_collected: BTreeMap<usize, Vec<Vec<Share<F>>>> = BTreeMap::new();
    let mut sk_collected: BTreeMap<usize, Vec<Vec<Share<F>>>> = BTreeMap::new();
    for r in recovery {
        for (owner, shares) in &r.b_shares {
            b_collected.entry(*owner).or_default().push(shares.clone());
        }
        for (owner, shares) in &r.sk_shares {
            sk_collected.entry(*owner).or_default().push(shares.clone());
        }
    }

    // (a) subtract PRG(b_i) for every included user.
    for &i in &included {
        let collected = b_collected
            .get(&i)
            .ok_or(lsa_coding::CodingError::NotEnoughShares {
                got: 0,
                need: cfg.threshold() + 1,
            })?;
        let seed = reconstruct_seed(cfg, i, collected)?;
        stats.secrets_reconstructed += 1;
        let self_mask: Vec<F> = FieldPrg::new(seed.derive(round)).expand(cfg.d());
        stats.prg_expansions += 1;
        lsa_field::ops::sub_assign(&mut aggregate, &self_mask);
    }

    // (b) cancel orphaned pairwise masks of every dropped user (Eq. 1).
    for &j in dropped {
        let collected = sk_collected
            .get(&j)
            .ok_or(lsa_coding::CodingError::NotEnoughShares {
                got: 0,
                need: cfg.threshold() + 1,
            })?;
        let sk = reconstruct_secret_key(cfg, j, collected)?;
        stats.secrets_reconstructed += 1;
        for &k in &cfg.graph().neighbors(j) {
            if !included.contains(&k) {
                continue;
            }
            let pk = directory.get(&k).ok_or(BaselineError::MissingKey(k))?;
            let seed = dh::agree(&sk, pk).derive(round);
            let pairwise: Vec<F> = FieldPrg::new(seed).expand(cfg.d());
            stats.prg_expansions += 1;
            if j < k {
                // k's model contains −PRG(a_{j,k}) → add it back
                lsa_field::ops::add_assign(&mut aggregate, &pairwise);
            } else {
                // k's model contains +PRG(a_{k,j}) → subtract
                lsa_field::ops::sub_assign(&mut aggregate, &pairwise);
            }
        }
    }

    Ok(SecAggRoundOutput {
        aggregate,
        included,
        dropped: dropped.to_vec(),
        stats,
    })
}

/// The holder list of a user's secrets: its neighbours plus itself,
/// sorted (so share indices are consistent between sharing and
/// reconstruction).
fn holders_of(graph: &crate::graph::CommunicationGraph, owner: usize) -> Vec<usize> {
    let mut holders = graph.neighbors(owner);
    holders.push(owner);
    holders.sort_unstable();
    holders
}

fn reconstruct_limbs<F: Field>(
    cfg: &SecAggConfig,
    owner: usize,
    collected: &[Vec<Share<F>>],
    limb_count: usize,
) -> Result<Vec<F>, BaselineError> {
    let holders = holders_of(cfg.graph(), owner);
    let scheme = ShamirScheme::<F>::new(holders.len(), cfg.threshold())?;
    let mut limbs = Vec::with_capacity(limb_count);
    for limb_idx in 0..limb_count {
        let shares: Vec<Share<F>> = collected
            .iter()
            .filter_map(|holder| holder.get(limb_idx).copied())
            .collect();
        limbs.push(scheme.reconstruct(&shares)?);
    }
    Ok(limbs)
}

fn reconstruct_seed<F: Field>(
    cfg: &SecAggConfig,
    owner: usize,
    collected: &[Vec<Share<F>>],
) -> Result<Seed, BaselineError> {
    let limbs = reconstruct_limbs(cfg, owner, collected, 16)?;
    let bytes = limbs::limbs_to_bytes(&limbs, 32);
    Ok(Seed(bytes.try_into().expect("32 bytes")))
}

fn reconstruct_secret_key<F: Field>(
    cfg: &SecAggConfig,
    owner: usize,
    collected: &[Vec<Share<F>>],
) -> Result<SecretKey, BaselineError> {
    let limbs = reconstruct_limbs(cfg, owner, collected, 4)?;
    Ok(SecretKey::from_raw(limbs::limbs_to_u64(&limbs)))
}

/// Reference driver: one full SecAgg/SecAgg+ round in memory.
///
/// Users in `dropouts.before_upload` never upload; users in
/// `dropouts.after_upload` upload but are *treated as dropped* (their
/// model is discarded and their pairwise masks reconstructed) — this is
/// the worst case of §7.1 that maximises server work.
///
/// # Errors
///
/// Propagates any sub-protocol failure; notably
/// [`BaselineError::Coding`] when dropouts leave fewer than `t+1`
/// surviving neighbours for some needed secret.
pub fn run_secagg_round<F: Field, R: Rng + ?Sized>(
    cfg: &SecAggConfig,
    models: &[Vec<F>],
    dropouts: &lsa_protocol::DropoutSchedule,
    rng: &mut R,
) -> Result<SecAggRoundOutput<F>, BaselineError> {
    assert_eq!(models.len(), cfg.n(), "one model per user");
    let round = 0u64;

    // Round 0: keys.
    let mut clients: Vec<SecAggClient<F>> = (0..cfg.n())
        .map(|id| SecAggClient::new(id, cfg.clone(), round, rng))
        .collect::<Result<_, _>>()?;
    let ads: Vec<KeyAdvertisement> = clients.iter().map(SecAggClient::advertise).collect();
    for c in clients.iter_mut() {
        c.install_directory(&ads);
    }

    // Round 1: secret sharing.
    let mut all_shares = Vec::new();
    for c in clients.iter_mut() {
        all_shares.extend(c.share_secrets(rng)?);
    }
    for msg in all_shares {
        clients[msg.to].receive_shares(msg)?;
    }

    // Round 2: masking and upload.
    let mut masked: BTreeMap<usize, Vec<F>> = BTreeMap::new();
    for (id, c) in clients.iter().enumerate() {
        if dropouts.before_upload.contains(&id) {
            continue;
        }
        if dropouts.after_upload.contains(&id) {
            // uploads, but the server will treat it as dropped; discard.
            let _ = c.mask_model(&models[id])?;
            continue;
        }
        masked.insert(id, c.mask_model(&models[id])?.payload);
    }

    let dropped: Vec<usize> = (0..cfg.n()).filter(|i| !masked.contains_key(i)).collect();
    let included: Vec<usize> = masked.keys().copied().collect();

    // Round 3: surviving helpers reveal shares.
    let helpers: Vec<usize> = included.clone();
    let recovery: Vec<RecoveryShares<F>> = helpers
        .iter()
        .map(|&id| clients[id].recovery_shares(&included, &dropped))
        .collect::<Result<_, _>>()?;

    server_recover(cfg, round, &masked, &dropped, &recovery, &ads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_field::Fp61;
    use lsa_protocol::DropoutSchedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn models(n: usize, d: usize, seed: u64) -> Vec<Vec<Fp61>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| lsa_field::ops::random_vector(d, &mut rng))
            .collect()
    }

    fn expected_sum(models: &[Vec<Fp61>], who: &[usize]) -> Vec<Fp61> {
        let mut acc = vec![Fp61::ZERO; models[0].len()];
        for &i in who {
            lsa_field::ops::add_assign(&mut acc, &models[i]);
        }
        acc
    }

    #[test]
    fn no_dropout_masks_cancel() {
        let cfg = SecAggConfig::secagg(5, 2, 8).unwrap();
        let ms = models(5, 8, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let out = run_secagg_round(&cfg, &ms, &DropoutSchedule::none(), &mut rng).unwrap();
        assert_eq!(out.aggregate, expected_sum(&ms, &[0, 1, 2, 3, 4]));
        // no dropouts: N seed reconstructions + N PRG expansions
        assert_eq!(out.stats.secrets_reconstructed, 5);
        assert_eq!(out.stats.prg_expansions, 5);
    }

    #[test]
    fn dropout_before_upload_recovered() {
        let cfg = SecAggConfig::secagg(5, 1, 8).unwrap();
        let ms = models(5, 8, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let out = run_secagg_round(
            &cfg,
            &ms,
            &DropoutSchedule::before_upload(vec![1]),
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.included, vec![0, 2, 3, 4]);
        assert_eq!(out.aggregate, expected_sum(&ms, &[0, 2, 3, 4]));
        // 4 self-seed + 1 sk reconstructions; 4 self PRG + 4 pairwise PRG
        assert_eq!(out.stats.secrets_reconstructed, 5);
        assert_eq!(out.stats.prg_expansions, 8);
    }

    #[test]
    fn dropout_after_upload_treated_as_dropped() {
        // the §7.1 worst case: model discarded, pairwise masks rebuilt
        let cfg = SecAggConfig::secagg(6, 2, 10).unwrap();
        let ms = models(6, 10, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let out = run_secagg_round(
            &cfg,
            &ms,
            &DropoutSchedule::after_upload(vec![0, 3]),
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.included, vec![1, 2, 4, 5]);
        assert_eq!(out.aggregate, expected_sum(&ms, &[1, 2, 4, 5]));
        // 4 b + 2 sk reconstructions; 4 self + 2×4 pairwise PRG
        assert_eq!(out.stats.secrets_reconstructed, 6);
        assert_eq!(out.stats.prg_expansions, 12);
    }

    #[test]
    fn secagg_plus_sparse_graph_round() {
        let cfg = SecAggConfig::secagg_plus(16, 6).unwrap();
        assert!(cfg.graph().degree() < 15);
        let ms = models(16, 6, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let out = run_secagg_round(
            &cfg,
            &ms,
            &DropoutSchedule::after_upload(vec![2, 9]),
            &mut rng,
        )
        .unwrap();
        let included: Vec<usize> = (0..16).filter(|i| *i != 2 && *i != 9).collect();
        assert_eq!(out.aggregate, expected_sum(&ms, &included));
        // pairwise reconstructions bounded by degree, not N
        assert!(out.stats.prg_expansions <= 14 + 2 * cfg.graph().degree());
    }

    #[test]
    fn too_many_dropouts_fail() {
        // threshold 2 needs 3 surviving neighbours per dropped user
        let cfg = SecAggConfig::secagg(4, 2, 4).unwrap();
        let ms = models(4, 4, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let res = run_secagg_round(
            &cfg,
            &ms,
            &DropoutSchedule::before_upload(vec![0, 1]),
            &mut rng,
        );
        assert!(res.is_err());
    }

    #[test]
    fn both_shares_request_rejected() {
        let cfg = SecAggConfig::secagg(3, 1, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let c = SecAggClient::<Fp61>::new(0, cfg, 0, &mut rng).unwrap();
        assert!(matches!(
            c.recovery_shares(&[1, 2], &[2]),
            Err(BaselineError::BothSharesRequested(2))
        ));
    }
}
