//! Baseline secure-aggregation protocols: SecAgg and SecAgg+.
//!
//! These are the two state-of-the-art protocols the LightSecAgg paper
//! compares against (§3):
//!
//! * **SecAgg** (Bonawitz et al., CCS 2017) — pairwise random masks from
//!   Diffie–Hellman seeds over the *complete* graph, plus a private
//!   self-mask; dropout recovery reconstructs seeds via Shamir shares and
//!   re-expands `O(N)` PRG masks per dropped user, for `O(N²·d)` server
//!   work in the worst case.
//! * **SecAgg+** (Bell et al., CCS 2020) — the same design over a sparse
//!   `k`-regular graph with `k = O(log N)`, reducing server work to
//!   `O(N·log N·d)`.
//!
//! Both are implemented by one engine ([`secagg`]) parameterised by a
//! [`CommunicationGraph`]. The server's recovery work is instrumented
//! ([`RecoveryStats`]) because that is precisely the bottleneck
//! LightSecAgg's one-shot reconstruction removes (Table 1, Table 4 of
//! the paper).
//!
//! # Example
//!
//! ```
//! use lsa_baselines::{run_secagg_round, SecAggConfig};
//! use lsa_field::{Field, Fp61};
//! use lsa_protocol::DropoutSchedule;
//! use rand::SeedableRng;
//!
//! let cfg = SecAggConfig::secagg(4, 1, 6).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let models: Vec<Vec<Fp61>> = (0..4)
//!     .map(|i| (0..6).map(|k| Fp61::from_u64((i + k) as u64)).collect())
//!     .collect();
//! let out = run_secagg_round(&cfg, &models, &DropoutSchedule::none(), &mut rng)?;
//! assert_eq!(out.included.len(), 4);
//! # Ok::<(), lsa_baselines::BaselineError>(())
//! ```

pub mod graph;
pub mod limbs;
pub mod secagg;

pub use graph::CommunicationGraph;
pub use secagg::{
    run_secagg_round, KeyAdvertisement, RecoveryShares, RecoveryStats, SecAggClient, SecAggConfig,
    SecAggRoundOutput, SecretShares,
};

use core::fmt;

/// Errors produced by the baseline protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// Invalid protocol parameters.
    InvalidConfig(String),
    /// A share was delivered to the wrong user.
    MisroutedShare {
        /// Intended recipient.
        expected: usize,
        /// Actual `to` field.
        got: usize,
    },
    /// A message was exchanged between non-adjacent users.
    NotNeighbors(usize, usize),
    /// The same message arrived twice.
    DuplicateMessage(usize),
    /// A required public key is missing from the directory.
    MissingKey(usize),
    /// The server asked one helper for both the `b` share and the `sk`
    /// share of the same owner — disallowed, as it would unmask a model.
    BothSharesRequested(usize),
    /// An underlying secret-sharing/coding failure.
    Coding(lsa_coding::CodingError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            BaselineError::MisroutedShare { expected, got } => {
                write!(f, "share addressed to {got} delivered to {expected}")
            }
            BaselineError::NotNeighbors(a, b) => {
                write!(f, "users {a} and {b} are not neighbours in the graph")
            }
            BaselineError::DuplicateMessage(id) => write!(f, "duplicate message from {id}"),
            BaselineError::MissingKey(id) => write!(f, "missing public key for user {id}"),
            BaselineError::BothSharesRequested(id) => {
                write!(f, "refusing to reveal both b and sk shares for user {id}")
            }
            BaselineError::Coding(e) => write!(f, "coding error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Coding(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lsa_coding::CodingError> for BaselineError {
    fn from(e: lsa_coding::CodingError) -> Self {
        BaselineError::Coding(e)
    }
}
