//! Encoding short secrets (PRG seeds, DH secret keys) as field-element
//! limbs so they can be Shamir-shared in any of the supported fields.
//!
//! 16-bit limbs are used because `2^16 < q` for every field in this
//! workspace, so each limb embeds losslessly.

use lsa_field::Field;

/// Encode bytes as little-endian 16-bit limbs (zero-padded to even
/// length).
pub fn bytes_to_limbs<F: Field>(bytes: &[u8]) -> Vec<F> {
    bytes
        .chunks(2)
        .map(|c| {
            let lo = c[0] as u64;
            let hi = c.get(1).copied().unwrap_or(0) as u64;
            F::from_u64(lo | (hi << 8))
        })
        .collect()
}

/// Decode 16-bit limbs back to `len` bytes.
///
/// # Panics
///
/// Panics if a limb exceeds 16 bits (corrupt reconstruction) or if the
/// limbs cannot cover `len` bytes.
pub fn limbs_to_bytes<F: Field>(limbs: &[F], len: usize) -> Vec<u8> {
    assert!(limbs.len() * 2 >= len, "not enough limbs for {len} bytes");
    let mut out = Vec::with_capacity(len);
    for limb in limbs {
        let v = limb.residue();
        assert!(v < (1 << 16), "limb out of 16-bit range: {v}");
        out.push((v & 0xff) as u8);
        out.push((v >> 8) as u8);
    }
    out.truncate(len);
    out
}

/// Encode a `u64` as four 16-bit limbs.
pub fn u64_to_limbs<F: Field>(value: u64) -> Vec<F> {
    bytes_to_limbs(&value.to_le_bytes())
}

/// Decode four 16-bit limbs back to a `u64`.
///
/// # Panics
///
/// Panics on corrupt limbs (see [`limbs_to_bytes`]).
pub fn limbs_to_u64<F: Field>(limbs: &[F]) -> u64 {
    let bytes = limbs_to_bytes(limbs, 8);
    u64::from_le_bytes(bytes.try_into().expect("exactly 8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_field::{Fp32, Fp61};

    #[test]
    fn bytes_roundtrip() {
        let data: Vec<u8> = (0..=31).collect();
        let limbs: Vec<Fp32> = bytes_to_limbs(&data);
        assert_eq!(limbs.len(), 16);
        assert_eq!(limbs_to_bytes(&limbs, 32), data);
    }

    #[test]
    fn odd_length_roundtrip() {
        let data = vec![1u8, 2, 3];
        let limbs: Vec<Fp61> = bytes_to_limbs(&data);
        assert_eq!(limbs_to_bytes(&limbs, 3), data);
    }

    #[test]
    fn u64_roundtrip() {
        for v in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            let limbs: Vec<Fp32> = u64_to_limbs(v);
            assert_eq!(limbs_to_u64(&limbs), v, "value {v:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "limb out of 16-bit range")]
    fn oversized_limb_detected() {
        let limbs = vec![Fp61::from_u64(1 << 20)];
        let _ = limbs_to_bytes(&limbs, 2);
    }
}
