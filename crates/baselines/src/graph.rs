//! Communication graphs for pairwise masking.
//!
//! SecAgg uses the complete graph (every user pair agrees on a seed);
//! SecAgg+ replaces it with a sparse `k`-regular graph with
//! `k = O(log N)`, which cuts both the offline cost and the number of
//! pairwise masks the server must reconstruct per dropped user.
//!
//! We use the Harary construction `H_{k,n}` (each node connects to its
//! `⌈k/2⌉` nearest neighbours on each side of a ring), which is
//! deterministic, exactly `k`-regular for even `k`, and `k`-connected —
//! matching the connectivity requirement SecAgg+ needs for share
//! recovery. (Bell et al. sample a random regular graph; a deterministic
//! one with the same degree has identical cost structure, which is what
//! the reproduced experiments measure.)

/// A symmetric communication graph over `n` users.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommunicationGraph {
    /// Every pair communicates (SecAgg).
    Complete {
        /// Number of users.
        n: usize,
    },
    /// Harary ring `H_{k,n}`: neighbours at ring distance `≤ k/2`
    /// (SecAgg+).
    Harary {
        /// Number of users.
        n: usize,
        /// Even degree `k ≥ 2`.
        k: usize,
    },
}

impl CommunicationGraph {
    /// Complete graph on `n` users.
    pub fn complete(n: usize) -> Self {
        CommunicationGraph::Complete { n }
    }

    /// Harary graph with degree `k` (rounded up to even, capped at
    /// `n − 1`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn harary(n: usize, k: usize) -> Self {
        assert!(n >= 2, "need at least 2 users");
        let k = k.max(2);
        let k = if k % 2 == 1 { k + 1 } else { k };
        if k >= n - 1 {
            // dense enough to be complete
            CommunicationGraph::Complete { n }
        } else {
            CommunicationGraph::Harary { n, k }
        }
    }

    /// The SecAgg+ default degree `k = O(log N)`: the smallest even
    /// integer `≥ c·log₂ N` (`c = 3` keeps small graphs connected under
    /// the dropout rates of the paper's experiments).
    pub fn secagg_plus_default(n: usize) -> Self {
        let k = (3.0 * (n.max(2) as f64).log2()).ceil() as usize;
        Self::harary(n, k)
    }

    /// Number of users.
    pub fn n(&self) -> usize {
        match *self {
            CommunicationGraph::Complete { n } | CommunicationGraph::Harary { n, .. } => n,
        }
    }

    /// Degree of each node.
    pub fn degree(&self) -> usize {
        match *self {
            CommunicationGraph::Complete { n } => n - 1,
            CommunicationGraph::Harary { k, .. } => k,
        }
    }

    /// Whether `i` and `j` are neighbours (irreflexive, symmetric).
    pub fn are_neighbors(&self, i: usize, j: usize) -> bool {
        if i == j {
            return false;
        }
        match *self {
            CommunicationGraph::Complete { n } => i < n && j < n,
            CommunicationGraph::Harary { n, k } => {
                let dist = {
                    let d = i.abs_diff(j);
                    d.min(n - d)
                };
                dist <= k / 2
            }
        }
    }

    /// The sorted neighbour list of `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        let n = self.n();
        assert!(i < n, "node {i} out of range");
        (0..n).filter(|&j| self.are_neighbors(i, j)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_degree() {
        let g = CommunicationGraph::complete(5);
        assert_eq!(g.degree(), 4);
        assert_eq!(g.neighbors(2), vec![0, 1, 3, 4]);
        assert!(!g.are_neighbors(2, 2));
    }

    #[test]
    fn harary_is_k_regular_and_symmetric() {
        let g = CommunicationGraph::harary(10, 4);
        for i in 0..10 {
            assert_eq!(g.neighbors(i).len(), 4, "node {i}");
            for j in g.neighbors(i) {
                assert!(g.are_neighbors(j, i), "asymmetric {i}-{j}");
            }
        }
    }

    #[test]
    fn harary_odd_degree_rounds_up() {
        let g = CommunicationGraph::harary(10, 3);
        assert_eq!(g.degree(), 4);
    }

    #[test]
    fn harary_degenerates_to_complete() {
        let g = CommunicationGraph::harary(4, 10);
        assert_eq!(g, CommunicationGraph::complete(4));
    }

    #[test]
    fn default_degree_is_logarithmic() {
        let g = CommunicationGraph::secagg_plus_default(200);
        // 3·log2(200) ≈ 22.9 → 24 (rounded to even)
        assert!(g.degree() >= 23 && g.degree() <= 24, "k = {}", g.degree());
        // and much smaller than N−1
        assert!(g.degree() < 199);
    }

    #[test]
    fn ring_distance_wraps() {
        let g = CommunicationGraph::harary(10, 2);
        assert!(g.are_neighbors(0, 9)); // wrap-around
        assert!(!g.are_neighbors(0, 5));
    }
}
