//! A blocking TCP transport over `std::net` — serialized envelopes
//! leaving the address space.
//!
//! The workspace is offline and dependency-free, so there is no async
//! runtime here: a [`TcpTransport`] owns one listening socket, a
//! blocking accept loop on its own thread, and one reader thread per
//! established connection. Readers park on `read_exact` and feed a
//! shared inbox; the protocol sessions stay poll-based and single
//! threaded, draining the inbox through [`TcpTransport::recv_bytes`]
//! exactly as they drain `MemTransport` queues.
//!
//! # Frame format
//!
//! Every frame is one length-prefixed routed payload:
//!
//! ```text
//! ┌────────────┬───────────┬──────────┬─────────┬────────┬─────────────┐
//! │ u32 LE len │ from_kind │ from_id  │ to_kind │ to_id  │ payload     │
//! │  (4 bytes) │  (1 byte) │ (u32 LE) │ (1 byte)│ (u32 LE│ (len − 10 B)│
//! └────────────┴───────────┴──────────┴─────────┴────────┴─────────────┘
//! ```
//!
//! `len` counts everything after the length word (the 10-byte routing
//! header plus the payload) and must lie in `[10, max_frame]`; a frame
//! whose prefix fails that check is rejected *before* any payload
//! allocation, and the connection is torn down. `kind` is `0` for
//! `Client(id)`, `1` for `Server` (id ignored). The payload is a
//! Wire-v2 [`lsa-protocol` envelope](https://docs.rs) encoding; this
//! crate treats it as opaque bytes. A zero-length payload is a control
//! frame (the dialer's hello) — it registers the peer's return route
//! and is never delivered to the inbox.
//!
//! # Accounting
//!
//! `bytes_sent`/`timings` mirror `SimTransport`: bytes count the
//! serialized payloads (not the 14-byte frame overhead), and
//! [`TcpTransport::flush_phase`] cuts a [`PhaseTiming`] whose
//! `messages`/`bytes` are the sends since the previous cut and whose
//! `arrivals` are the wall-clock receipt times (seconds since the
//! transport was created) of payloads drained in the window.

use crate::timing::PhaseTiming;
use crate::NodeId;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default hard ceiling on a frame's declared length (64 MiB) — large
/// enough for multi-million-element model payloads, small enough that a
/// hostile length prefix cannot OOM the receiver.
pub const DEFAULT_MAX_FRAME: usize = 1 << 26;

/// Bytes of routing header inside every frame (after the length word).
const HEADER_LEN: usize = 10;

/// Framing overhead per payload frame: the 4-byte length word plus the
/// routing header. [`TcpTransport::framing_bytes`] accumulates this per
/// sent frame so byte accounting can separate payload (comparable
/// across transport backends) from wire overhead (TCP-only).
pub const FRAME_OVERHEAD: usize = 4 + HEADER_LEN;

const KIND_CLIENT: u8 = 0;
const KIND_SERVER: u8 = 1;

fn encode_node(buf: &mut Vec<u8>, node: NodeId) {
    match node {
        NodeId::Client(i) => {
            buf.push(KIND_CLIENT);
            buf.extend_from_slice(&(i as u32).to_le_bytes());
        }
        NodeId::Server => {
            buf.push(KIND_SERVER);
            buf.extend_from_slice(&0u32.to_le_bytes());
        }
    }
}

fn decode_node(kind: u8, id: u32) -> io::Result<NodeId> {
    match kind {
        KIND_CLIENT => Ok(NodeId::Client(id as usize)),
        KIND_SERVER => Ok(NodeId::Server),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown node kind {other:#04x} in frame header"),
        )),
    }
}

/// One routed payload delivered off the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpDelivery {
    /// Sender address, as claimed by the frame header.
    pub from: NodeId,
    /// Destination address.
    pub to: NodeId,
    /// The opaque serialized envelope.
    pub payload: Vec<u8>,
}

#[derive(Debug, Default)]
struct Inbox {
    /// (delivery, arrival time in seconds since transport epoch).
    queue: VecDeque<(TcpDelivery, f64)>,
    /// First fatal connection error observed by any reader thread;
    /// surfaced once the queue drains.
    failed: Option<String>,
}

#[derive(Debug)]
struct Shared {
    max_frame: usize,
    epoch: Instant,
    inbox: Mutex<Inbox>,
    available: Condvar,
    /// Write halves keyed by the peer the route reaches.
    routes: Mutex<HashMap<NodeId, TcpStream>>,
}

impl Shared {
    fn push(&self, delivery: TcpDelivery) {
        let arrived = self.epoch.elapsed().as_secs_f64();
        self.inbox
            .lock()
            .unwrap()
            .queue
            .push_back((delivery, arrived));
        self.available.notify_all();
    }

    fn fail(&self, err: &io::Error) {
        let mut inbox = self.inbox.lock().unwrap();
        if inbox.failed.is_none() {
            inbox.failed = Some(err.to_string());
        }
        self.available.notify_all();
    }
}

/// Read one frame; `Ok(None)` on clean EOF at a frame boundary.
fn read_frame(stream: &mut TcpStream, max_frame: usize) -> io::Result<Option<TcpDelivery>> {
    let mut word = [0u8; 4];
    match stream.read_exact(&mut word) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(word) as usize;
    if len < HEADER_LEN || len > max_frame {
        // rejected before the payload allocation the prefix asks for
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside [{HEADER_LEN}, {max_frame}]"),
        ));
    }
    let mut frame = vec![0u8; len];
    stream.read_exact(&mut frame)?;
    let from = decode_node(
        frame[0],
        u32::from_le_bytes(frame[1..5].try_into().unwrap()),
    )?;
    let to = decode_node(
        frame[5],
        u32::from_le_bytes(frame[6..10].try_into().unwrap()),
    )?;
    frame.drain(..HEADER_LEN);
    Ok(Some(TcpDelivery {
        from,
        to,
        payload: frame,
    }))
}

/// Park on `stream` until it closes, feeding every frame into the
/// shared inbox. The first frame from a peer also registers the
/// connection as the return route to that peer; empty payloads are
/// control frames and stop there.
fn reader_loop(mut stream: TcpStream, shared: Arc<Shared>) {
    loop {
        match read_frame(&mut stream, shared.max_frame) {
            Ok(Some(delivery)) => {
                if let std::collections::hash_map::Entry::Vacant(slot) =
                    shared.routes.lock().unwrap().entry(delivery.from)
                {
                    if let Ok(clone) = stream.try_clone() {
                        slot.insert(clone);
                    }
                }
                if !delivery.payload.is_empty() {
                    shared.push(delivery);
                }
            }
            Ok(None) => return,
            Err(e) => {
                shared.fail(&e);
                return;
            }
        }
    }
}

/// A node's endpoint in a real TCP deployment: at most one listening
/// socket plus any number of dialed-out connections, multiplexed into
/// one FIFO inbox.
#[derive(Debug)]
pub struct TcpTransport {
    local: NodeId,
    shared: Arc<Shared>,
    local_addr: Option<SocketAddr>,
    bytes_sent: usize,
    messages_sent: usize,
    framing_bytes: usize,
    timings: Vec<PhaseTiming>,
    phase_mark: f64,
    phase_messages: usize,
    phase_bytes: usize,
    phase_arrivals: Vec<f64>,
}

impl TcpTransport {
    fn with_shared(local: NodeId, max_frame: usize) -> Self {
        Self {
            local,
            shared: Arc::new(Shared {
                max_frame,
                epoch: Instant::now(),
                inbox: Mutex::new(Inbox::default()),
                available: Condvar::new(),
                routes: Mutex::new(HashMap::new()),
            }),
            local_addr: None,
            bytes_sent: 0,
            messages_sent: 0,
            framing_bytes: 0,
            timings: Vec::new(),
            phase_mark: 0.0,
            phase_messages: 0,
            phase_bytes: 0,
            phase_arrivals: Vec::new(),
        }
    }

    /// A dial-only endpoint (no listening socket) with the default
    /// frame ceiling.
    pub fn new(local: NodeId) -> Self {
        Self::with_shared(local, DEFAULT_MAX_FRAME)
    }

    /// Bind `addr`, start the accept loop, and return the endpoint.
    /// Use `port 0` to let the OS pick; [`TcpTransport::local_addr`]
    /// reports the bound address.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind<A: ToSocketAddrs>(local: NodeId, addr: A) -> io::Result<Self> {
        Self::bind_with_max_frame(local, addr, DEFAULT_MAX_FRAME)
    }

    /// [`TcpTransport::bind`] with an explicit frame ceiling.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with_max_frame<A: ToSocketAddrs>(
        local: NodeId,
        addr: A,
        max_frame: usize,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let mut t = Self::with_shared(local, max_frame);
        t.local_addr = Some(listener.local_addr()?);
        let shared = Arc::clone(&t.shared);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                match stream {
                    Ok(s) => {
                        let shared = Arc::clone(&shared);
                        std::thread::spawn(move || reader_loop(s, shared));
                    }
                    Err(_) => return,
                }
            }
        });
        Ok(t)
    }

    /// The address the accept loop listens on, if this endpoint binds.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// This endpoint's node id.
    pub fn local_node(&self) -> NodeId {
        self.local
    }

    /// Open a connection to `peer` at `addr`, announce ourselves with a
    /// hello frame, and register the route.
    ///
    /// # Errors
    ///
    /// Propagates connect/handshake failures.
    pub fn dial<A: ToSocketAddrs>(&mut self, peer: NodeId, addr: A) -> io::Result<()> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        // hello: empty payload, registers `self.local` as the return
        // route on the remote side
        stream.write_all(&frame_bytes(self.local, peer, &[]))?;
        let reader = stream.try_clone()?;
        self.shared.routes.lock().unwrap().insert(peer, stream);
        let shared = Arc::clone(&self.shared);
        std::thread::spawn(move || reader_loop(reader, shared));
        Ok(())
    }

    /// First pause of [`TcpTransport::dial_retry`]'s exponential
    /// backoff.
    const DIAL_BACKOFF_INITIAL: Duration = Duration::from_millis(10);
    /// Backoff ceiling: retries settle at this cadence instead of
    /// hammering a peer that is slow to come up.
    const DIAL_BACKOFF_CAP: Duration = Duration::from_millis(500);

    /// [`TcpTransport::dial`] retried until `deadline` elapses — the
    /// peer's listener may not be up yet when processes start together.
    /// Retries back off exponentially (10 ms doubling to a 500 ms cap),
    /// so a fleet of late joiners doesn't saturate the listener's accept
    /// queue with connect storms; the pause never overshoots the
    /// deadline, and one final attempt always runs at it.
    ///
    /// # Errors
    ///
    /// Returns the last connect failure once the deadline passes.
    pub fn dial_retry<A: ToSocketAddrs + Clone>(
        &mut self,
        peer: NodeId,
        addr: A,
        deadline: Duration,
    ) -> io::Result<()> {
        let start = Instant::now();
        let mut backoff = Self::DIAL_BACKOFF_INITIAL;
        loop {
            match self.dial(peer, addr.clone()) {
                Ok(()) => return Ok(()),
                Err(e) if start.elapsed() < deadline => {
                    let _ = e;
                    // sleep the current backoff, clipped to the time
                    // left so the deadline attempt isn't delayed past it
                    let left = deadline.saturating_sub(start.elapsed());
                    std::thread::sleep(backoff.min(left));
                    backoff = (backoff * 2).min(Self::DIAL_BACKOFF_CAP);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Serialize-and-send one opaque payload to `to`, which must be a
    /// registered route (dialed, or learned from an inbound frame).
    ///
    /// # Errors
    ///
    /// Fails if the payload exceeds the frame ceiling, no route to `to`
    /// exists, or the socket write fails.
    pub fn send_bytes(&mut self, from: NodeId, to: NodeId, payload: &[u8]) -> io::Result<()> {
        if payload.len() > self.shared.max_frame - HEADER_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "payload of {} bytes exceeds the {}-byte frame ceiling",
                    payload.len(),
                    self.shared.max_frame
                ),
            ));
        }
        let mut routes = self.shared.routes.lock().unwrap();
        let Some(stream) = routes.get_mut(&to) else {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                format!("no route to {to:?}"),
            ));
        };
        stream.write_all(&frame_bytes(from, to, payload))?;
        drop(routes);
        self.bytes_sent += payload.len();
        self.messages_sent += 1;
        self.framing_bytes += FRAME_OVERHEAD;
        self.phase_messages += 1;
        self.phase_bytes += payload.len();
        Ok(())
    }

    /// Pop the next delivery without blocking; `Ok(None)` when the
    /// inbox is empty.
    ///
    /// # Errors
    ///
    /// Surfaces a reader thread's connection failure once the queue has
    /// drained.
    pub fn recv_bytes(&mut self) -> io::Result<Option<TcpDelivery>> {
        let mut inbox = self.shared.inbox.lock().unwrap();
        if let Some((delivery, arrived)) = inbox.queue.pop_front() {
            drop(inbox);
            self.phase_arrivals.push(arrived);
            return Ok(Some(delivery));
        }
        match &inbox.failed {
            Some(msg) => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                msg.clone(),
            )),
            None => Ok(None),
        }
    }

    /// Pop the next delivery, parking up to `timeout` for one to arrive.
    ///
    /// # Errors
    ///
    /// Surfaces a reader thread's connection failure once the queue has
    /// drained.
    pub fn recv_bytes_timeout(&mut self, timeout: Duration) -> io::Result<Option<TcpDelivery>> {
        let deadline = Instant::now() + timeout;
        let mut inbox = self.shared.inbox.lock().unwrap();
        loop {
            if let Some((delivery, arrived)) = inbox.queue.pop_front() {
                drop(inbox);
                self.phase_arrivals.push(arrived);
                return Ok(Some(delivery));
            }
            if let Some(msg) = &inbox.failed {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    msg.clone(),
                ));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let (guard, _) = self
                .shared
                .available
                .wait_timeout(inbox, deadline - now)
                .unwrap();
            inbox = guard;
        }
    }

    /// Cut a phase record named `label`: sends since the previous cut,
    /// plus the arrival stamps of deliveries drained in the window.
    pub fn flush_phase(&mut self, label: &'static str) {
        let end = self.elapsed();
        let mut arrivals = std::mem::take(&mut self.phase_arrivals);
        arrivals.sort_by(f64::total_cmp);
        self.timings.push(PhaseTiming {
            label,
            start: self.phase_mark,
            end,
            messages: self.phase_messages,
            bytes: self.phase_bytes,
            arrivals,
        });
        self.phase_mark = end;
        self.phase_messages = 0;
        self.phase_bytes = 0;
    }

    /// Total serialized payload bytes ever sent.
    pub fn bytes_sent(&self) -> usize {
        self.bytes_sent
    }

    /// Total payload frames ever sent.
    pub fn messages_sent(&self) -> usize {
        self.messages_sent
    }

    /// Total framing overhead sent: [`FRAME_OVERHEAD`] per payload
    /// frame. Hello/route-announcement frames (empty payloads sent by
    /// `dial`) are control traffic and excluded, so this is exactly
    /// `messages_sent() * FRAME_OVERHEAD`.
    pub fn framing_bytes(&self) -> usize {
        self.framing_bytes
    }

    /// Phase records cut so far.
    pub fn timings(&self) -> &[PhaseTiming] {
        &self.timings
    }

    /// Wall-clock seconds since this endpoint was created.
    pub fn elapsed(&self) -> f64 {
        self.shared.epoch.elapsed().as_secs_f64()
    }

    /// The frame ceiling in force.
    pub fn max_frame(&self) -> usize {
        self.shared.max_frame
    }
}

/// Assemble one wire frame.
fn frame_bytes(from: NodeId, to: NodeId, payload: &[u8]) -> Vec<u8> {
    let len = HEADER_LEN + payload.len();
    let mut buf = Vec::with_capacity(4 + len);
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    encode_node(&mut buf, from);
    encode_node(&mut buf, to);
    buf.extend_from_slice(payload);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server_on_loopback() -> TcpTransport {
        TcpTransport::bind(NodeId::Server, "127.0.0.1:0").expect("bind loopback")
    }

    #[test]
    fn dial_send_and_receive_roundtrip() {
        let mut server = server_on_loopback();
        let addr = server.local_addr().unwrap();
        let mut client = TcpTransport::new(NodeId::Client(3));
        client
            .dial_retry(NodeId::Server, addr, Duration::from_secs(5))
            .unwrap();
        client
            .send_bytes(NodeId::Client(3), NodeId::Server, b"masked-model")
            .unwrap();
        let d = server
            .recv_bytes_timeout(Duration::from_secs(5))
            .unwrap()
            .expect("delivery");
        assert_eq!(d.from, NodeId::Client(3));
        assert_eq!(d.to, NodeId::Server);
        assert_eq!(d.payload, b"masked-model");
        assert_eq!(client.bytes_sent(), b"masked-model".len());
        assert_eq!(client.messages_sent(), 1);
    }

    #[test]
    fn learned_route_allows_reply_without_dialing_back() {
        let mut server = server_on_loopback();
        let addr = server.local_addr().unwrap();
        let mut client = TcpTransport::new(NodeId::Client(0));
        client
            .dial_retry(NodeId::Server, addr, Duration::from_secs(5))
            .unwrap();
        client
            .send_bytes(NodeId::Client(0), NodeId::Server, b"ping")
            .unwrap();
        server.recv_bytes_timeout(Duration::from_secs(5)).unwrap();
        // the hello (and the ping) taught the server the return route
        server
            .send_bytes(NodeId::Server, NodeId::Client(0), b"pong")
            .unwrap();
        let d = client
            .recv_bytes_timeout(Duration::from_secs(5))
            .unwrap()
            .expect("reply");
        assert_eq!(d.from, NodeId::Server);
        assert_eq!(d.payload, b"pong");
    }

    #[test]
    fn oversized_send_rejected_locally() {
        let mut server =
            TcpTransport::bind_with_max_frame(NodeId::Server, "127.0.0.1:0", 1024).unwrap();
        let addr = server.local_addr().unwrap();
        let client = TcpTransport::new(NodeId::Client(0));
        // client negotiated nothing: its own ceiling is what stops it
        let mut small_client = TcpTransport::with_shared(NodeId::Client(1), 64);
        small_client
            .dial_retry(NodeId::Server, addr, Duration::from_secs(5))
            .unwrap();
        let err = small_client
            .send_bytes(NodeId::Client(1), NodeId::Server, &[0u8; 128])
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let _ = client;
        let _ = server.recv_bytes();
    }

    #[test]
    fn hostile_length_prefix_tears_down_connection_before_allocation() {
        let mut server =
            TcpTransport::bind_with_max_frame(NodeId::Server, "127.0.0.1:0", 4096).unwrap();
        let addr = server.local_addr().unwrap();
        // raw socket claiming a 2 GiB frame
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&(2u32 << 30).to_le_bytes()).unwrap();
        raw.flush().unwrap();
        // the reader rejects the prefix; once the inbox drains the error
        // surfaces to the poller
        let err = loop {
            match server.recv_bytes_timeout(Duration::from_millis(100)) {
                Ok(Some(_)) => continue,
                Ok(None) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
        assert!(err.to_string().contains("outside"), "got: {err}");
    }

    #[test]
    fn dial_retry_connects_when_listener_arrives_late() {
        // reserve a port, free it, and bring the listener up only after
        // the dialer has already burned through its first few backoffs
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let accept = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(250));
            let listener = TcpListener::bind(addr).expect("rebind reserved port");
            let _conn = listener.accept().expect("accept late dialer");
        });
        let mut client = TcpTransport::new(NodeId::Client(0));
        let start = Instant::now();
        client
            .dial_retry(NodeId::Server, addr, Duration::from_secs(10))
            .expect("dial succeeds once the listener is up");
        assert!(
            start.elapsed() >= Duration::from_millis(200),
            "connected before the listener could have existed"
        );
        accept.join().unwrap();
    }

    #[test]
    fn dial_retry_deadline_is_not_overshot_by_backoff() {
        // no listener ever comes up: the error must land close to the
        // deadline — the growing backoff is clipped to the time left,
        // never parking past it
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let deadline = Duration::from_millis(300);
        let mut client = TcpTransport::new(NodeId::Client(0));
        let start = Instant::now();
        let err = client
            .dial_retry(NodeId::Server, addr, deadline)
            .unwrap_err();
        let elapsed = start.elapsed();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused, "got: {err}");
        assert!(elapsed >= deadline, "gave up early at {elapsed:?}");
        assert!(
            elapsed < deadline + TcpTransport::DIAL_BACKOFF_CAP,
            "overshot the deadline: {elapsed:?}"
        );
    }

    #[test]
    fn no_route_is_a_typed_error() {
        let mut t = TcpTransport::new(NodeId::Client(0));
        let err = t
            .send_bytes(NodeId::Client(0), NodeId::Server, b"x")
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotConnected);
    }

    #[test]
    fn phase_accounting_matches_sim_shape() {
        let mut server = server_on_loopback();
        let addr = server.local_addr().unwrap();
        let mut client = TcpTransport::new(NodeId::Client(0));
        client
            .dial_retry(NodeId::Server, addr, Duration::from_secs(5))
            .unwrap();
        client
            .send_bytes(NodeId::Client(0), NodeId::Server, &[7u8; 100])
            .unwrap();
        client
            .send_bytes(NodeId::Client(0), NodeId::Server, &[7u8; 50])
            .unwrap();
        client.flush_phase("upload");
        let t = &client.timings()[0];
        assert_eq!(t.label, "upload");
        assert_eq!(t.messages, 2);
        assert_eq!(t.bytes, 150);
        assert!(t.end >= t.start);
        // receiver side: arrivals land in the receiver's phase record
        for _ in 0..2 {
            server
                .recv_bytes_timeout(Duration::from_secs(5))
                .unwrap()
                .expect("delivery");
        }
        server.flush_phase("collect");
        let r = &server.timings()[0];
        assert_eq!(r.arrivals.len(), 2);
        assert!(r.arrivals[0] <= r.arrivals[1]);
    }
}
