//! Network backends for cross-device FL: a discrete-event simulator
//! (this module) and a real blocking TCP transport ([`tcp`]), sharing
//! the [`timing::PhaseTiming`] accounting currency.
//!
//! Substitutes for the paper's AWS EC2 `m3.medium` testbed (DESIGN.md §4):
//! every node owns transmit/receive channels with finite bandwidth, every
//! transfer pays a propagation latency, and the server's shared
//! ingress/egress is modelled explicitly — which is what makes the
//! masked-model collection phase scale with `N·d` (Table 1, "online comm.
//! (S)") and produces the running-time curves of Figures 6 and 8–10.
//!
//! The simulator is intentionally flow-level (each transfer occupies a
//! channel for `bytes/rate` seconds, FIFO per channel): protocol phases
//! are bulk transfers, so flow-level queueing reproduces the phase
//! timings without per-packet detail.
//!
//! Duplexing is configurable: [`Duplex::Full`] models the paper's
//! optimized send/receive queues (§6, "tensor-aware RPC"); [`Duplex::Half`]
//! models the unoptimized path where a node's single channel serializes
//! sends and receives — the ablation of Figure 5.
//!
//! # Example
//!
//! ```
//! use lsa_net::{Duplex, Network, NetworkConfig, NodeId, Transfer};
//!
//! let cfg = NetworkConfig::mbps(3, 320.0, 1000.0, 0.002);
//! let mut net = Network::new(cfg, Duplex::Full);
//! // three clients upload 1 MB each to the server starting at t = 0
//! let transfers: Vec<Transfer> = (0..3)
//!     .map(|i| Transfer::new(NodeId::Client(i), NodeId::Server, 1_000_000))
//!     .collect();
//! let report = net.run_phase(0.0, &transfers);
//! assert!(report.phase_end > 0.0);
//! ```

pub mod tcp;
pub mod timing;

pub use tcp::{TcpDelivery, TcpTransport, FRAME_OVERHEAD};
pub use timing::PhaseTiming;

use std::collections::BTreeMap;

/// A network endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeId {
    /// Client (user) `i`.
    Client(usize),
    /// The aggregation server.
    Server,
}

/// Whether a node can send and receive simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Duplex {
    /// Independent transmit/receive channels (optimized send/recv queues).
    Full,
    /// One shared channel: sends and receives serialize.
    Half,
}

/// Static link parameters of the simulated deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Number of clients.
    pub clients: usize,
    /// Per-client bandwidth in bits/second (applies per direction under
    /// full duplex).
    pub client_bps: f64,
    /// Server bandwidth in bits/second (shared across all concurrent
    /// flows in each direction).
    pub server_bps: f64,
    /// One-way propagation latency in seconds.
    pub latency: f64,
}

impl NetworkConfig {
    /// Convenience constructor in megabits/second.
    pub fn mbps(clients: usize, client_mbps: f64, server_mbps: f64, latency: f64) -> Self {
        Self {
            clients,
            client_bps: client_mbps * 1e6,
            server_bps: server_mbps * 1e6,
            latency,
        }
    }

    /// The paper's measured default: 320 Mb/s at clients, 2 ms latency;
    /// the server is provisioned at 10× client bandwidth.
    pub fn paper_default(clients: usize) -> Self {
        Self::mbps(clients, 320.0, 3200.0, 0.002)
    }

    /// 4G (LTE-A) setting of Table 3: 98 Mb/s.
    pub fn lte(clients: usize) -> Self {
        Self::mbps(clients, 98.0, 980.0, 0.030)
    }

    /// 5G setting of Table 3: 802 Mb/s.
    pub fn five_g(clients: usize) -> Self {
        Self::mbps(clients, 802.0, 8020.0, 0.005)
    }
}

/// One bulk transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Earliest time the transfer may start (relative to the phase
    /// start passed to [`Network::run_phase`]); defaults to `0`.
    pub ready_at: f64,
}

impl Transfer {
    /// A transfer ready at the phase start.
    pub fn new(from: NodeId, to: NodeId, bytes: usize) -> Self {
        Self {
            from,
            to,
            bytes,
            ready_at: 0.0,
        }
    }

    /// A transfer that becomes ready `ready_at` seconds into the phase.
    pub fn ready_at(mut self, t: f64) -> Self {
        self.ready_at = t;
        self
    }
}

/// FIFO bit-pipe: transfers serialize; each occupies the channel for
/// `bits/rate` seconds.
#[derive(Debug, Clone, Copy)]
struct Channel {
    rate_bps: f64,
    busy_until: f64,
}

impl Channel {
    fn new(rate_bps: f64) -> Self {
        Self {
            rate_bps,
            busy_until: 0.0,
        }
    }

    /// Reserve the channel from `earliest`; returns (start, end).
    fn reserve(&mut self, earliest: f64, bytes: f64) -> (f64, f64) {
        let start = earliest.max(self.busy_until);
        let end = start + bytes * 8.0 / self.rate_bps;
        self.busy_until = end;
        (start, end)
    }
}

/// The simulated network. Owns per-node channels and a virtual clock;
/// [`Network::run_phase`] schedules a batch of transfers and reports
/// completion times.
#[derive(Debug, Clone)]
pub struct Network {
    cfg: NetworkConfig,
    duplex: Duplex,
    client_tx: Vec<Channel>,
    client_rx: Vec<Channel>,
    server_tx: Channel,
    server_rx: Channel,
}

/// Completion report of a phase.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Completion time of each transfer, in input order.
    pub finish_times: Vec<f64>,
    /// When each receiver finished its last transfer of this phase.
    pub node_done: BTreeMap<NodeId, f64>,
    /// The phase end (max of all completions, or the phase start when
    /// there were no transfers).
    pub phase_end: f64,
}

impl PhaseReport {
    /// Completion time of the `k`-th earliest-finishing transfer
    /// (0-based) — used for "server proceeds after receiving any `U`
    /// messages".
    ///
    /// # Panics
    ///
    /// Panics if `k >= finish_times.len()`.
    pub fn kth_completion(&self, k: usize) -> f64 {
        let mut sorted = self.finish_times.clone();
        sorted.sort_by(f64::total_cmp);
        sorted[k]
    }
}

impl Network {
    /// Build a network.
    pub fn new(cfg: NetworkConfig, duplex: Duplex) -> Self {
        let client_tx: Vec<Channel> = (0..cfg.clients)
            .map(|_| Channel::new(cfg.client_bps))
            .collect();
        let client_rx = client_tx.clone();
        Self {
            cfg,
            duplex,
            client_tx,
            client_rx,
            server_tx: Channel::new(cfg.server_bps),
            server_rx: Channel::new(cfg.server_bps),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Reset all channels to idle (start of a fresh round).
    pub fn reset(&mut self) {
        for c in self.client_tx.iter_mut().chain(self.client_rx.iter_mut()) {
            c.busy_until = 0.0;
        }
        self.server_tx.busy_until = 0.0;
        self.server_rx.busy_until = 0.0;
    }

    /// Schedule all `transfers` no earlier than `start` (+ their
    /// individual `ready_at` offsets) and return the completion report.
    ///
    /// Transfers on the same channel serialize in input order — callers
    /// that want fair interleaving should interleave the input (the
    /// protocol drivers round-robin over clients, modelling the chunked
    /// concurrent queues of the paper's §6).
    pub fn run_phase(&mut self, start: f64, transfers: &[Transfer]) -> PhaseReport {
        let mut finish_times = Vec::with_capacity(transfers.len());
        let mut node_done: BTreeMap<NodeId, f64> = BTreeMap::new();
        let mut phase_end = start;
        for t in transfers {
            let ready = start + t.ready_at;
            let bytes = t.bytes as f64;
            // sender's transmit channel
            let (_, tx_end) = self.tx_channel(t.from).reserve(ready, bytes);
            // propagation
            let arrival = tx_end + self.cfg.latency;
            // receiver's receive channel: reception may cut through while
            // bits arrive, so a free channel finishes exactly at arrival
            let rx_serialization = bytes * 8.0 / self.rate_of(t.to);
            let (_, rx_end) = self
                .rx_channel(t.to)
                .reserve(arrival - rx_serialization, bytes);
            // the receive cannot complete before the data fully arrived
            let end = rx_end.max(arrival);
            finish_times.push(end);
            let e = node_done.entry(t.to).or_insert(end);
            *e = e.max(end);
            phase_end = phase_end.max(end);
        }
        PhaseReport {
            finish_times,
            node_done,
            phase_end,
        }
    }

    fn rate_of(&self, node: NodeId) -> f64 {
        match node {
            NodeId::Client(_) => self.cfg.client_bps,
            NodeId::Server => self.cfg.server_bps,
        }
    }

    fn tx_channel(&mut self, node: NodeId) -> &mut Channel {
        match (node, self.duplex) {
            (NodeId::Client(i), _) => &mut self.client_tx[i],
            (NodeId::Server, _) => &mut self.server_tx,
        }
    }

    fn rx_channel(&mut self, node: NodeId) -> &mut Channel {
        match (node, self.duplex) {
            (NodeId::Client(i), Duplex::Full) => &mut self.client_rx[i],
            // half duplex: the receive shares the transmit channel
            (NodeId::Client(i), Duplex::Half) => &mut self.client_tx[i],
            (NodeId::Server, Duplex::Full) => &mut self.server_rx,
            (NodeId::Server, Duplex::Half) => &mut self.server_tx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn single_transfer_time_is_latency_plus_serialization() {
        // 1 Mb over 1 Mb/s with 10 ms latency = 1.01 s
        let cfg = NetworkConfig {
            clients: 1,
            client_bps: 1e6,
            server_bps: 1e9,
            latency: 0.01,
        };
        let mut net = Network::new(cfg, Duplex::Full);
        let r = net.run_phase(
            0.0,
            &[Transfer::new(NodeId::Client(0), NodeId::Server, 125_000)],
        );
        near(r.phase_end, 1.01);
    }

    #[test]
    fn server_ingress_serializes_uploads() {
        // 4 clients, fast client links, slow server: uploads queue at the
        // server ingress.
        let cfg = NetworkConfig {
            clients: 4,
            client_bps: 1e9,
            server_bps: 1e6,
            latency: 0.0,
        };
        let mut net = Network::new(cfg, Duplex::Full);
        let transfers: Vec<Transfer> = (0..4)
            .map(|i| Transfer::new(NodeId::Client(i), NodeId::Server, 125_000))
            .collect();
        let r = net.run_phase(0.0, &transfers);
        near(r.phase_end, 4.0);
    }

    #[test]
    fn client_uplink_serializes_fanout() {
        // one client sends to 3 peers over a 1 Mb/s uplink: 3 s total
        let cfg = NetworkConfig {
            clients: 4,
            client_bps: 1e6,
            server_bps: 1e9,
            latency: 0.0,
        };
        let mut net = Network::new(cfg, Duplex::Full);
        let transfers: Vec<Transfer> = (1..4)
            .map(|i| Transfer::new(NodeId::Client(0), NodeId::Client(i), 125_000))
            .collect();
        let r = net.run_phase(0.0, &transfers);
        near(r.phase_end, 3.0);
    }

    #[test]
    fn half_duplex_serializes_send_and_receive() {
        let cfg = NetworkConfig {
            clients: 2,
            client_bps: 1e6,
            server_bps: 1e9,
            latency: 0.0,
        };
        // client 0 sends 1 Mb to client 1 AND receives 1 Mb from client 1.
        let transfers = vec![
            Transfer::new(NodeId::Client(0), NodeId::Client(1), 125_000),
            Transfer::new(NodeId::Client(1), NodeId::Client(0), 125_000),
        ];
        let mut full = Network::new(cfg, Duplex::Full);
        let full_t = full.run_phase(0.0, &transfers).phase_end;
        let mut half = Network::new(cfg, Duplex::Half);
        let half_t = half.run_phase(0.0, &transfers).phase_end;
        near(full_t, 1.0);
        assert!(half_t > 1.5, "half duplex should serialize: {half_t}");
    }

    #[test]
    fn ready_at_delays_start() {
        let cfg = NetworkConfig {
            clients: 1,
            client_bps: 1e6,
            server_bps: 1e9,
            latency: 0.0,
        };
        let mut net = Network::new(cfg, Duplex::Full);
        let r = net.run_phase(
            5.0,
            &[Transfer::new(NodeId::Client(0), NodeId::Server, 125_000).ready_at(2.0)],
        );
        near(r.phase_end, 8.0);
    }

    #[test]
    fn kth_completion_supports_any_u_semantics() {
        let cfg = NetworkConfig {
            clients: 3,
            client_bps: 1e6,
            server_bps: 1e9,
            latency: 0.0,
        };
        let mut net = Network::new(cfg, Duplex::Full);
        let transfers: Vec<Transfer> = (0..3)
            .map(|i| Transfer::new(NodeId::Client(i), NodeId::Server, 125_000 * (i + 1)))
            .collect();
        let r = net.run_phase(0.0, &transfers);
        near(r.kth_completion(0), 1.0);
        near(r.kth_completion(1), 2.0);
        near(r.kth_completion(2), 3.0);
    }

    #[test]
    fn reset_clears_backlog() {
        let cfg = NetworkConfig {
            clients: 1,
            client_bps: 1e6,
            server_bps: 1e9,
            latency: 0.0,
        };
        let mut net = Network::new(cfg, Duplex::Full);
        net.run_phase(
            0.0,
            &[Transfer::new(NodeId::Client(0), NodeId::Server, 125_000)],
        );
        net.reset();
        let r = net.run_phase(
            0.0,
            &[Transfer::new(NodeId::Client(0), NodeId::Server, 125_000)],
        );
        near(r.phase_end, 1.0);
    }

    #[test]
    fn paper_presets_have_expected_rates() {
        let d = NetworkConfig::paper_default(10);
        assert_eq!(d.client_bps, 320e6);
        let lte = NetworkConfig::lte(10);
        assert_eq!(lte.client_bps, 98e6);
        let g5 = NetworkConfig::five_g(10);
        assert_eq!(g5.client_bps, 802e6);
    }
}
