//! Phase timing records shared by every transport backend.
//!
//! A [`PhaseTiming`] is the common currency between the discrete-event
//! simulator (where times are simulated seconds) and the real TCP
//! backend (where times are wall-clock seconds since the transport was
//! created). Protocol drivers consume the records identically either
//! way: `start`/`end` bound the phase, `arrivals` supports "proceed
//! after any `k` arrivals" semantics.

/// Wall-clock record of one protocol phase as observed by a transport.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// The driver-supplied phase label.
    pub label: &'static str,
    /// Time the phase started (s).
    pub start: f64,
    /// Time the last byte of the phase arrived (s).
    pub end: f64,
    /// Messages moved during the phase.
    pub messages: usize,
    /// Serialized bytes moved during the phase.
    pub bytes: usize,
    /// Arrival time of every message in the phase, ascending — supports
    /// "receiver proceeds after any `k` arrivals" semantics.
    pub arrivals: Vec<f64>,
}

impl PhaseTiming {
    /// Phase duration in seconds (until the *last* arrival).
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Completion time of the `k`-th earliest arrival (0-based) — e.g.
    /// the moment the server holds `U` aggregated shares even though
    /// stragglers are still transmitting.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.messages`.
    pub fn kth_completion(&self, k: usize) -> f64 {
        self.arrivals[k]
    }
}
