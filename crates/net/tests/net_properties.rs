//! Property-based tests of the network simulator's physical sanity.

use lsa_net::{Duplex, Network, NetworkConfig, NodeId, Transfer};
use proptest::prelude::*;

fn cfg(clients: usize) -> NetworkConfig {
    NetworkConfig {
        clients,
        client_bps: 10e6,
        server_bps: 100e6,
        latency: 0.001,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// More bytes never finish earlier.
    #[test]
    fn transfer_time_monotone_in_bytes(bytes in 1usize..10_000_000) {
        let mut net = Network::new(cfg(1), Duplex::Full);
        let t1 = net
            .run_phase(0.0, &[Transfer::new(NodeId::Client(0), NodeId::Server, bytes)])
            .phase_end;
        let mut net = Network::new(cfg(1), Duplex::Full);
        let t2 = net
            .run_phase(
                0.0,
                &[Transfer::new(NodeId::Client(0), NodeId::Server, bytes * 2)],
            )
            .phase_end;
        prop_assert!(t2 >= t1);
    }

    /// Half duplex is never faster than full duplex on the same plan.
    #[test]
    fn half_duplex_never_faster(
        n in 2usize..6,
        plan in proptest::collection::vec((0usize..6, 0usize..6, 1usize..100_000), 1..12),
    ) {
        let transfers: Vec<Transfer> = plan
            .iter()
            .filter(|(a, b, _)| a % n != b % n)
            .map(|&(a, b, bytes)| {
                Transfer::new(NodeId::Client(a % n), NodeId::Client(b % n), bytes)
            })
            .collect();
        prop_assume!(!transfers.is_empty());
        let full = Network::new(cfg(n), Duplex::Full).run_phase(0.0, &transfers).phase_end;
        let half = Network::new(cfg(n), Duplex::Half).run_phase(0.0, &transfers).phase_end;
        prop_assert!(half >= full - 1e-12, "half {half} < full {full}");
    }

    /// Every transfer finishes no earlier than latency + its own
    /// serialization on the slowest of the two channels.
    #[test]
    fn physical_lower_bound(bytes in 1usize..1_000_000) {
        let c = cfg(1);
        let mut net = Network::new(c, Duplex::Full);
        let report = net.run_phase(
            0.0,
            &[Transfer::new(NodeId::Client(0), NodeId::Server, bytes)],
        );
        let min_time = c.latency + bytes as f64 * 8.0 / c.client_bps;
        prop_assert!(report.finish_times[0] >= min_time - 1e-12);
    }

    /// Completion times are monotone in the k index of kth_completion.
    #[test]
    fn kth_completion_sorted(
        sizes in proptest::collection::vec(1usize..500_000, 2..8),
    ) {
        let n = sizes.len();
        let mut net = Network::new(cfg(n), Duplex::Full);
        let transfers: Vec<Transfer> = sizes
            .iter()
            .enumerate()
            .map(|(i, &b)| Transfer::new(NodeId::Client(i), NodeId::Server, b))
            .collect();
        let report = net.run_phase(0.0, &transfers);
        for k in 1..n {
            prop_assert!(report.kth_completion(k) >= report.kth_completion(k - 1));
        }
    }

    /// The phase end equals the max of the individual completions.
    #[test]
    fn phase_end_is_max(
        sizes in proptest::collection::vec(1usize..200_000, 1..6),
    ) {
        let n = sizes.len();
        let mut net = Network::new(cfg(n), Duplex::Full);
        let transfers: Vec<Transfer> = sizes
            .iter()
            .enumerate()
            .map(|(i, &b)| Transfer::new(NodeId::Client(i), NodeId::Server, b))
            .collect();
        let report = net.run_phase(0.0, &transfers);
        let max = report
            .finish_times
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((report.phase_end - max).abs() < 1e-12);
    }
}
