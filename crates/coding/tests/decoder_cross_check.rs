//! Cross-validation of the fast Lagrange decoder against an independent
//! generic linear-algebra decoder (generator-submatrix inversion).
//!
//! The two implementations share no code beyond the field, so agreement
//! over random instances is strong evidence both are correct.

use lsa_coding::VandermondeCode;
use lsa_field::{Field, Fp32};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Decode by explicitly inverting the U×U generator submatrix — the
/// textbook method the production decoder replaces.
fn decode_via_matrix(
    code: &VandermondeCode<Fp32>,
    shares: &[(usize, Vec<Fp32>)],
) -> Vec<Vec<Fp32>> {
    let u = code.u();
    let used = &shares[..u];
    let gen = code.generator_matrix();
    let cols: Vec<usize> = used.iter().map(|(j, _)| *j).collect();
    let rows: Vec<usize> = (0..u).collect();
    let sub = gen.submatrix(&rows, &cols); // u×u, coded = subᵀ · segments
    let inv = sub.transpose().inverse().expect("MDS submatrix invertible");

    let seg_len = used[0].1.len();
    let mut out = vec![vec![Fp32::ZERO; seg_len]; u];
    for e in 0..seg_len {
        let y: Vec<Fp32> = used.iter().map(|(_, p)| p[e]).collect();
        let x = inv.mul_vec(&y);
        for (k, out_k) in out.iter_mut().enumerate() {
            out_k[e] = x[k];
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lagrange_decoder_matches_matrix_decoder(
        n in 3usize..10,
        seed in any::<u64>(),
    ) {
        let u = 2 + (seed as usize % (n - 1)).min(n - 2);
        let m = 1 + (seed as usize % 4);
        let code = VandermondeCode::<Fp32>::new(n, u).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let segments: Vec<Vec<Fp32>> = (0..u)
            .map(|_| lsa_field::ops::random_vector(m, &mut rng))
            .collect();
        let coded = code.encode_all(&segments);

        // random u-subset of shares
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (seed as usize).wrapping_mul(i + 29) % (i + 1);
            idx.swap(i, j);
        }
        let shares: Vec<(usize, Vec<Fp32>)> =
            idx[..u].iter().map(|&j| (j, coded[j].clone())).collect();

        let fast = code.decode_all(&shares).unwrap();
        let slow = decode_via_matrix(&code, &shares);
        prop_assert_eq!(fast, slow.clone());
        prop_assert_eq!(slow, segments);
    }
}

#[test]
fn matrix_decoder_agrees_on_aggregated_shares() {
    // the one-shot recovery path: decode a SUM of encodings
    let n = 7;
    let u = 4;
    let code = VandermondeCode::<Fp32>::new(n, u).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let users = 3;
    let all_segments: Vec<Vec<Vec<Fp32>>> = (0..users)
        .map(|_| {
            (0..u)
                .map(|_| lsa_field::ops::random_vector(5, &mut rng))
                .collect()
        })
        .collect();
    // aggregated coded share at each j
    let shares: Vec<(usize, Vec<Fp32>)> = (0..u)
        .map(|j| {
            let mut acc = vec![Fp32::ZERO; 5];
            for segs in &all_segments {
                lsa_field::ops::add_assign(&mut acc, &code.encode_for(segs, j));
            }
            (j, acc)
        })
        .collect();
    let fast = code.decode_all(&shares).unwrap();
    let slow = decode_via_matrix(&code, &shares);
    assert_eq!(fast, slow);
    // equals the segment-wise sum
    for k in 0..u {
        let mut want = vec![Fp32::ZERO; 5];
        for segs in &all_segments {
            lsa_field::ops::add_assign(&mut want, &segs[k]);
        }
        assert_eq!(fast[k], want);
    }
}
