//! Property-based tests for the coding layer.

use lsa_coding::{vandermonde, ShamirScheme, VandermondeCode};
use lsa_field::{Field, Fp32};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any U-subset of coded segments decodes back to the original
    /// segments (the MDS property, exercised end-to-end).
    #[test]
    fn mds_decoding_from_random_subsets(
        n in 2usize..10,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = 1 + (seed as usize % n);
        let m = 1 + (seed as usize % 5);
        let code = VandermondeCode::<Fp32>::new(n, u).unwrap();
        let segs: Vec<Vec<Fp32>> = (0..u)
            .map(|_| lsa_field::ops::random_vector(m, &mut rng))
            .collect();
        let coded = code.encode_all(&segs);

        // choose a random u-subset via shuffling indices
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (seed as usize).wrapping_mul(i + 17) % (i + 1);
            idx.swap(i, j);
        }
        let shares: Vec<_> = idx[..u].iter().map(|&j| (j, coded[j].clone())).collect();
        prop_assert_eq!(code.decode_all(&shares).unwrap(), segs);
    }

    /// Sum-then-encode equals encode-then-sum: the exact linearity used by
    /// the one-shot aggregate recovery (Eq. (6)).
    #[test]
    fn coding_commutes_with_addition(
        seed in any::<u64>(),
        n_users in 2usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let code = VandermondeCode::<Fp32>::new(5, 3).unwrap();
        let all: Vec<Vec<Vec<Fp32>>> = (0..n_users)
            .map(|_| (0..3).map(|_| lsa_field::ops::random_vector(4, &mut rng)).collect())
            .collect();

        // encode each user's segments, then sum coded segment j
        for j in 0..5 {
            let sum_of_coded = lsa_field::ops::sum_vectors(
                all.iter()
                    .map(|segs| code.encode_for(segs, j))
                    .collect::<Vec<_>>()
                    .iter()
                    .map(Vec::as_slice),
            )
            .unwrap();

            // sum segments first, then encode
            let mut summed_segs = all[0].clone();
            for segs in &all[1..] {
                for (acc, s) in summed_segs.iter_mut().zip(segs) {
                    lsa_field::ops::add_assign(acc, s);
                }
            }
            prop_assert_eq!(code.encode_for(&summed_segs, j), sum_of_coded);
        }
    }

    /// Shamir reconstruction succeeds from any (t+1)-subset and yields the
    /// shared secret.
    #[test]
    fn shamir_any_quorum(
        secret in any::<u64>(),
        seed in any::<u64>(),
        n in 2usize..8,
    ) {
        let t = (n - 1) / 2;
        let scheme = ShamirScheme::<Fp32>::new(n, t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let s = Fp32::from_u64(secret);
        let shares = scheme.share(s, &mut rng);

        // rotate through contiguous quorums
        for start in 0..n {
            let quorum: Vec<_> = (0..=t).map(|k| shares[(start + k) % n]).collect();
            prop_assert_eq!(scheme.reconstruct(&quorum).unwrap(), s);
        }
    }

    /// Shamir shares are additively homomorphic: sharing s1 and s2 and
    /// adding shares pointwise reconstructs s1+s2. (SecAgg relies on the
    /// plain reconstruction only, but homomorphism is a useful invariant
    /// that catches evaluation-point mismatches.)
    #[test]
    fn shamir_additive_homomorphism(
        s1 in any::<u64>(),
        s2 in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let scheme = ShamirScheme::<Fp32>::new(5, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let sh1 = scheme.share(Fp32::from_u64(s1), &mut rng);
        let sh2 = scheme.share(Fp32::from_u64(s2), &mut rng);
        let sum_shares: Vec<_> = sh1
            .iter()
            .zip(&sh2)
            .map(|(a, b)| lsa_coding::Share { index: a.index, value: a.value + b.value })
            .collect();
        let rec = scheme.reconstruct(&sum_shares[1..4]).unwrap();
        prop_assert_eq!(rec, Fp32::from_u64(s1) + Fp32::from_u64(s2));
    }

    /// partition/concatenate are mutually inverse whenever lengths divide.
    #[test]
    fn partition_roundtrip(parts in 1usize..10, m in 1usize..20, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let flat = lsa_field::ops::random_vector::<Fp32, _>(parts * m, &mut rng);
        let segs = vandermonde::partition(&flat, parts).unwrap();
        prop_assert_eq!(segs.len(), parts);
        prop_assert_eq!(vandermonde::concatenate(&segs), flat);
    }
}
