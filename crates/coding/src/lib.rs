//! MDS coding, interpolation, matrix algebra and Shamir secret sharing.
//!
//! This crate provides the coding-theoretic substrate of the LightSecAgg
//! protocol (So et al., MLSys 2022) and its baselines:
//!
//! * [`Matrix`] — dense matrices over a prime field with Gaussian
//!   elimination (inversion, rank, solving), used for verification and
//!   generic decoding.
//! * [`vandermonde`] — the `T`-private `U×N` MDS matrices of Eq. (5) of the
//!   paper, realised as Vandermonde matrices over distinct non-zero points,
//!   plus efficient encoding (Horner) and decoding
//!   (Lagrange-basis coefficient recovery).
//! * [`interpolation`] — polynomial interpolation utilities shared by the
//!   MDS decoder and Shamir reconstruction.
//! * [`shamir`] — `t`-out-of-`n` Shamir secret sharing used by the
//!   SecAgg/SecAgg+ baselines to share PRG seeds and secret keys.
//!
//! # Example: erasure-resilient, private mask coding
//!
//! ```
//! use lsa_coding::vandermonde::VandermondeCode;
//! use lsa_field::{Field, Fp32};
//! use rand::SeedableRng;
//!
//! // N = 5 users, code dimension U = 3.
//! let code = VandermondeCode::<Fp32>::new(5, 3).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // U segments of length 4 (first U−T are data, last T are noise).
//! let segments: Vec<Vec<Fp32>> = (0..3)
//!     .map(|_| lsa_field::ops::random_vector(4, &mut rng))
//!     .collect();
//! let coded = code.encode_all(&segments);
//! assert_eq!(coded.len(), 5);
//! // Any U = 3 coded segments recover all original segments.
//! let subset = vec![
//!     (4usize, coded[4].clone()),
//!     (0usize, coded[0].clone()),
//!     (2usize, coded[2].clone()),
//! ];
//! let decoded = code.decode_prefix(&subset, 3).unwrap();
//! assert_eq!(decoded, segments);
//! ```

pub mod interpolation;
pub mod matrix;
pub mod shamir;
pub mod vandermonde;

pub use matrix::Matrix;
pub use shamir::{ShamirScheme, Share};
pub use vandermonde::VandermondeCode;

use core::fmt;

/// Errors produced by the coding layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodingError {
    /// Fewer coded symbols supplied than the code dimension requires.
    NotEnoughShares {
        /// How many shares were supplied.
        got: usize,
        /// How many shares are required.
        need: usize,
    },
    /// Two shares carried the same evaluation index.
    DuplicateShareIndex(usize),
    /// A share index was out of range for the code length.
    ShareIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The code length `n`.
        n: usize,
    },
    /// Segment/share payloads had inconsistent lengths.
    LengthMismatch {
        /// Expected payload length.
        expected: usize,
        /// Observed payload length.
        got: usize,
    },
    /// The requested code parameters are invalid (e.g. `u > n` or `u == 0`).
    InvalidParameters(String),
    /// A matrix operation failed because the matrix is singular.
    SingularMatrix,
}

impl fmt::Display for CodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodingError::NotEnoughShares { got, need } => {
                write!(f, "not enough shares: got {got}, need {need}")
            }
            CodingError::DuplicateShareIndex(i) => {
                write!(f, "duplicate share index {i}")
            }
            CodingError::ShareIndexOutOfRange { index, n } => {
                write!(f, "share index {index} out of range for code length {n}")
            }
            CodingError::LengthMismatch { expected, got } => {
                write!(f, "payload length mismatch: expected {expected}, got {got}")
            }
            CodingError::InvalidParameters(msg) => {
                write!(f, "invalid code parameters: {msg}")
            }
            CodingError::SingularMatrix => write!(f, "matrix is singular"),
        }
    }
}

impl std::error::Error for CodingError {}
