//! Dense matrices over a prime field with Gaussian elimination.
//!
//! Used for decoding verification, MDS-property checking in tests, and as
//! the generic (if slower) fallback decoder. The hot decoding path of the
//! protocol uses [`crate::vandermonde`] instead.

use crate::CodingError;
use lsa_field::Field;

/// A dense row-major matrix over field `F`.
///
/// # Example
///
/// ```
/// use lsa_coding::Matrix;
/// use lsa_field::{Field, Fp32};
///
/// let m = Matrix::<Fp32>::identity(3);
/// assert_eq!(m.rank(), 3);
/// assert_eq!(m.inverse().unwrap(), m);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix<F> {
    rows: usize,
    cols: usize,
    data: Vec<F>,
}

impl<F: Field> Matrix<F> {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![F::ZERO; rows * cols],
        }
    }

    /// Create the `n×n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = F::ONE;
        }
        m
    }

    /// Build a matrix from a row-major nested `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: Vec<Vec<F>>) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Build from a generator function `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> F) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[F] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[F]) -> Vec<F> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| lsa_field::ops::dot(self.row(i), x))
            .collect()
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn mul(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == F::ZERO {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Extract the submatrix given by `row_idx × col_idx` (with repetition
    /// allowed, though the MDS checks never use it).
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> Self {
        Self::from_fn(row_idx.len(), col_idx.len(), |i, j| {
            self[(row_idx[i], col_idx[j])]
        })
    }

    /// Rank via Gaussian elimination (destructive on a copy).
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        let mut rank = 0;
        let mut col = 0;
        while rank < m.rows && col < m.cols {
            // find pivot
            let pivot = (rank..m.rows).find(|&r| m[(r, col)] != F::ZERO);
            let Some(p) = pivot else {
                col += 1;
                continue;
            };
            m.swap_rows(rank, p);
            let inv = m[(rank, col)].inv().expect("pivot non-zero");
            for j in col..m.cols {
                m[(rank, j)] *= inv;
            }
            for r in 0..m.rows {
                if r != rank && m[(r, col)] != F::ZERO {
                    let factor = m[(r, col)];
                    for j in col..m.cols {
                        let v = m[(rank, j)];
                        m[(r, j)] -= factor * v;
                    }
                }
            }
            rank += 1;
            col += 1;
        }
        rank
    }

    /// Invert a square matrix by Gauss–Jordan elimination.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::SingularMatrix`] if not invertible, and
    /// [`CodingError::InvalidParameters`] if not square.
    pub fn inverse(&self) -> Result<Self, CodingError> {
        if self.rows != self.cols {
            return Err(CodingError::InvalidParameters(format!(
                "cannot invert {}x{} matrix",
                self.rows, self.cols
            )));
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Self::identity(n);
        for col in 0..n {
            let pivot = (col..n)
                .find(|&r| a[(r, col)] != F::ZERO)
                .ok_or(CodingError::SingularMatrix)?;
            a.swap_rows(col, pivot);
            inv.swap_rows(col, pivot);
            let scale = a[(col, col)].inv().expect("pivot non-zero");
            for j in 0..n {
                a[(col, j)] *= scale;
                inv[(col, j)] *= scale;
            }
            for r in 0..n {
                if r != col && a[(r, col)] != F::ZERO {
                    let factor = a[(r, col)];
                    for j in 0..n {
                        let av = a[(col, j)];
                        let iv = inv[(col, j)];
                        a[(r, j)] -= factor * av;
                        inv[(r, j)] -= factor * iv;
                    }
                }
            }
        }
        Ok(inv)
    }

    /// Solve `self · x = b` for square `self`.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::SingularMatrix`] if the system has no unique
    /// solution.
    pub fn solve(&self, b: &[F]) -> Result<Vec<F>, CodingError> {
        Ok(self.inverse()?.mul_vec(b))
    }

    /// Check the MDS property by brute force: every maximal square
    /// submatrix is non-singular. Exponential in size — test helper only.
    pub fn is_mds(&self) -> bool {
        let (k, n) = (self.rows.min(self.cols), self.cols.max(self.rows));
        let wide = if self.rows <= self.cols {
            self.clone()
        } else {
            self.transpose()
        };
        // iterate over all k-subsets of n columns
        let mut subset: Vec<usize> = (0..k).collect();
        loop {
            let rows: Vec<usize> = (0..k).collect();
            let sub = wide.submatrix(&rows, &subset);
            if sub.rank() != k {
                return false;
            }
            // next combination
            let mut i = k;
            loop {
                if i == 0 {
                    return true;
                }
                i -= 1;
                if subset[i] != i + n - k {
                    subset[i] += 1;
                    for j in i + 1..k {
                        subset[j] = subset[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }
}

impl<F: Field> core::ops::Index<(usize, usize)> for Matrix<F> {
    type Output = F;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &F {
        &self.data[i * self.cols + j]
    }
}

impl<F: Field> core::ops::IndexMut<(usize, usize)> for Matrix<F> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut F {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_field::Fp32;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<Fp32> {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| Fp32::random(&mut rng))
    }

    #[test]
    fn identity_inverse_is_identity() {
        let id = Matrix::<Fp32>::identity(4);
        assert_eq!(id.inverse().unwrap(), id);
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let m = random_matrix(6, 6, 1);
        let inv = m.inverse().unwrap();
        assert_eq!(m.mul(&inv), Matrix::identity(6));
        assert_eq!(inv.mul(&m), Matrix::identity(6));
    }

    #[test]
    fn singular_matrix_detected() {
        let mut m = random_matrix(4, 4, 2);
        // make row 3 = row 0 + row 1
        for j in 0..4 {
            let v = m[(0, j)] + m[(1, j)];
            m[(3, j)] = v;
        }
        assert_eq!(m.inverse(), Err(CodingError::SingularMatrix));
        assert_eq!(m.rank(), 3);
    }

    #[test]
    fn solve_recovers_x() {
        let m = random_matrix(5, 5, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let x: Vec<Fp32> = lsa_field::ops::random_vector(5, &mut rng);
        let b = m.mul_vec(&x);
        let got = m.solve(&b).unwrap();
        assert_eq!(got, x);
    }

    #[test]
    fn transpose_involution() {
        let m = random_matrix(3, 7, 5);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn mul_associative_small() {
        let a = random_matrix(3, 4, 6);
        let b = random_matrix(4, 2, 7);
        let c = random_matrix(2, 5, 8);
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn vandermonde_is_mds_brute_force() {
        // 3×6 Vandermonde over distinct points is MDS.
        let pts: Vec<Fp32> = lsa_field::evaluation_points(6);
        let m = Matrix::from_fn(3, 6, |i, j| pts[j].pow(i as u64));
        assert!(m.is_mds());
    }

    #[test]
    fn repeated_points_not_mds() {
        let mut pts: Vec<Fp32> = lsa_field::evaluation_points(6);
        pts[3] = pts[0]; // duplicate point => some submatrix singular
        let m = Matrix::from_fn(3, 6, |i, j| pts[j].pow(i as u64));
        assert!(!m.is_mds());
    }

    #[test]
    fn rank_of_wide_matrix() {
        let m = random_matrix(3, 10, 11);
        assert_eq!(m.rank(), 3);
    }
}
