//! Polynomial interpolation over a prime field.
//!
//! Two users: the Vandermonde MDS decoder (recovering polynomial
//! *coefficients* from evaluations) and Shamir reconstruction (evaluating
//! the interpolant at a single point, usually zero).

use crate::CodingError;
use lsa_field::Field;

/// Lagrange evaluation weights for interpolating through `(xs[i], ·)` and
/// evaluating at `target`.
///
/// Returns `w` such that `p(target) = Σ w[i]·y[i]` for any values `y`.
///
/// # Errors
///
/// Returns [`CodingError::DuplicateShareIndex`] if two `xs` coincide.
pub fn lagrange_weights_at<F: Field>(xs: &[F], target: F) -> Result<Vec<F>, CodingError> {
    let n = xs.len();
    let mut weights = vec![F::ONE; n];
    for i in 0..n {
        let mut num = F::ONE;
        let mut den = F::ONE;
        for j in 0..n {
            if i == j {
                continue;
            }
            if xs[i] == xs[j] {
                return Err(CodingError::DuplicateShareIndex(j));
            }
            num *= target - xs[j];
            den *= xs[i] - xs[j];
        }
        weights[i] = num
            * den
                .inv()
                .expect("distinct points give non-zero denominator");
    }
    Ok(weights)
}

/// Coefficients (low-to-high degree) of the unique polynomial of degree
/// `< xs.len()` passing through `(xs[i], ys[i])`.
///
/// Uses the master-polynomial + synthetic-division formulation:
/// `M(x) = Π (x − x_i)`, `L_i(x) = M(x)/(x − x_i) · w_i`, so the whole
/// routine is `O(n²)` field operations.
///
/// # Errors
///
/// Returns [`CodingError::LengthMismatch`] if `xs` and `ys` differ in
/// length, or [`CodingError::DuplicateShareIndex`] on duplicate points.
pub fn interpolate_coefficients<F: Field>(xs: &[F], ys: &[F]) -> Result<Vec<F>, CodingError> {
    if xs.len() != ys.len() {
        return Err(CodingError::LengthMismatch {
            expected: xs.len(),
            got: ys.len(),
        });
    }
    let basis = lagrange_basis_coefficients(xs)?;
    let n = xs.len();
    let mut coeffs = vec![F::ZERO; n];
    let rows: Vec<&[F]> = basis.iter().map(Vec::as_slice).collect();
    lsa_field::ops::weighted_sum_into(&mut coeffs, ys, &rows);
    Ok(coeffs)
}

/// The coefficient vectors of all Lagrange basis polynomials `L_i` for the
/// point set `xs` (each of length `xs.len()`, low-to-high degree).
///
/// This is the decoding matrix of the Vandermonde code: stacking the
/// results as columns gives `V^{-1}` for `V[i][k] = xs[i]^k`.
///
/// # Errors
///
/// Returns [`CodingError::DuplicateShareIndex`] on duplicate points.
pub fn lagrange_basis_coefficients<F: Field>(xs: &[F]) -> Result<Vec<Vec<F>>, CodingError> {
    let n = xs.len();
    for i in 0..n {
        for j in i + 1..n {
            if xs[i] == xs[j] {
                return Err(CodingError::DuplicateShareIndex(j));
            }
        }
    }
    // Master polynomial M(x) = Π (x − x_i), coefficients low-to-high.
    let mut master = vec![F::ZERO; n + 1];
    master[0] = F::ONE;
    for (k, &x) in xs.iter().enumerate() {
        let mut next = vec![F::ZERO; n + 1];
        for j in 0..=k {
            next[j + 1] += master[j];
            next[j] -= x * master[j];
        }
        master = next;
    }
    // Barycentric weights w_i = 1 / Π_{j≠i} (x_i − x_j), inverted in one
    // batch (Montgomery's trick) instead of n full exponentiations.
    let dens: Vec<F> = (0..n)
        .map(|i| {
            let mut den = F::ONE;
            for j in 0..n {
                if j != i {
                    den *= xs[i] - xs[j];
                }
            }
            den
        })
        .collect();
    let weights =
        lsa_field::ops::batch_invert(&dens).expect("distinct points give non-zero denominators");

    let mut basis = Vec::with_capacity(n);
    for (i, &w) in weights.iter().enumerate() {
        // Synthetic division q(x) = M(x)/(x − x_i), degree n−1.
        let mut q = vec![F::ZERO; n];
        q[n - 1] = master[n];
        for j in (1..n).rev() {
            q[j - 1] = master[j] + xs[i] * q[j];
        }
        basis.push(q.into_iter().map(|c| c * w).collect());
    }
    Ok(basis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_field::{Fp32, Fp61};

    fn f(v: u64) -> Fp32 {
        Fp32::from_u64(v)
    }

    #[test]
    fn weights_reconstruct_constant() {
        let xs = vec![f(1), f(2), f(3)];
        let w = lagrange_weights_at(&xs, Fp32::ZERO).unwrap();
        // constant polynomial: all ys equal c => p(0) = c
        let p0: Fp32 = w.iter().map(|&wi| wi * f(42)).sum();
        assert_eq!(p0, f(42));
    }

    #[test]
    fn duplicate_points_rejected() {
        let xs = vec![f(1), f(1)];
        assert!(matches!(
            lagrange_weights_at(&xs, Fp32::ZERO),
            Err(CodingError::DuplicateShareIndex(_))
        ));
    }

    #[test]
    fn interpolate_quadratic() {
        // p(x) = 3 + 2x + x², sample at 1,2,3
        let coeffs = [f(3), f(2), f(1)];
        let eval = |x: Fp32| coeffs[0] + coeffs[1] * x + coeffs[2] * x * x;
        let xs = vec![f(1), f(2), f(3)];
        let ys: Vec<Fp32> = xs.iter().map(|&x| eval(x)).collect();
        let got = interpolate_coefficients(&xs, &ys).unwrap();
        assert_eq!(got, coeffs.to_vec());
    }

    #[test]
    fn interpolate_fp61() {
        let c = [Fp61::from_u64(9), Fp61::from_u64(1_000_000_007)];
        let xs = vec![Fp61::from_u64(5), Fp61::from_u64(6)];
        let ys: Vec<Fp61> = xs.iter().map(|&x| c[0] + c[1] * x).collect();
        let got = interpolate_coefficients(&xs, &ys).unwrap();
        assert_eq!(got, c.to_vec());
    }
}
