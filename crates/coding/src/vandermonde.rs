//! The `T`-private `U×N` MDS code of LightSecAgg, realised as a
//! Vandermonde code.
//!
//! Eq. (5) of the paper encodes the `U` segments
//! `([z]_1, …, [z]_{U−T}, [n]_{U−T+1}, …, [n]_U)` with the `j`-th column of
//! a `T`-private MDS matrix `W ∈ F_q^{U×N}`. With
//! `W[k][j] = β_j^k` for distinct non-zero points `β_j`:
//!
//! * any `U×U` column-submatrix is Vandermonde ⇒ non-singular ⇒ **MDS**,
//!   giving dropout-resilience (any `U` coded segments decode);
//! * the bottom `T` rows are `β_j^{U−T+k} = β_j^{U−T}·β_j^k`, i.e. a
//!   Vandermonde matrix with columns rescaled by non-zero constants, so any
//!   `T×T` submatrix of them is non-singular too ⇒ **`T`-private**
//!   (Lemma 1 of the paper: `T` coded segments are jointly uniform when the
//!   `T` noise segments are).
//!
//! Encoding one coded segment is a Horner evaluation (`O(U·m)` for segment
//! length `m`); decoding the first `k` coefficient segments from any `U`
//! coded segments costs `O(U²)` scalar operations to derive the Lagrange
//! basis plus `O(k·U·m)` multiply-accumulates.

use crate::{interpolation, CodingError};
use lsa_field::{evaluation_points, Field};

/// A systematic-free Vandermonde MDS code of length `n` and dimension `u`.
///
/// # Example
///
/// ```
/// use lsa_coding::VandermondeCode;
/// use lsa_field::Fp32;
///
/// let code = VandermondeCode::<Fp32>::new(4, 2).unwrap();
/// let segs = vec![
///     vec![Fp32::from(1u32), Fp32::from(2u32)],
///     vec![Fp32::from(3u32), Fp32::from(4u32)],
/// ];
/// let coded = code.encode_all(&segs);
/// let recovered = code
///     .decode_prefix(&[(1, coded[1].clone()), (3, coded[3].clone())], 2)
///     .unwrap();
/// assert_eq!(recovered, segs);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VandermondeCode<F> {
    n: usize,
    u: usize,
    points: Vec<F>,
}

impl<F: Field> VandermondeCode<F> {
    /// Create a code of length `n` (number of users) and dimension `u`
    /// (number of segments, the paper's `U`).
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::InvalidParameters`] unless `0 < u ≤ n`.
    pub fn new(n: usize, u: usize) -> Result<Self, CodingError> {
        if u == 0 || u > n {
            return Err(CodingError::InvalidParameters(format!(
                "need 0 < u <= n, got u={u}, n={n}"
            )));
        }
        Ok(Self {
            n,
            u,
            points: evaluation_points(n),
        })
    }

    /// Code length `n` (one coded segment per user).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Code dimension `u`.
    pub fn u(&self) -> usize {
        self.u
    }

    /// The evaluation point assigned to user `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= n`.
    pub fn point(&self, j: usize) -> F {
        self.points[j]
    }

    /// Encode the coded segment destined to user `j`:
    /// `Σ_k segments[k] · β_j^k` (one Vandermonde column).
    ///
    /// The powers of `β_j` are computed once and the segments folded
    /// through the fused widened-accumulator kernel — one reduction per
    /// output element instead of one per segment.
    ///
    /// # Panics
    ///
    /// Panics if `segments.len() != u`, the segments are ragged, or
    /// `j >= n`.
    pub fn encode_for(&self, segments: &[Vec<F>], j: usize) -> Vec<F> {
        assert_eq!(segments.len(), self.u, "expected u segments");
        lsa_field::ops::horner_eval(segments, self.points[j])
    }

    /// Encode all `n` coded segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments.len() != u` or the segments are ragged.
    pub fn encode_all(&self, segments: &[Vec<F>]) -> Vec<Vec<F>> {
        (0..self.n).map(|j| self.encode_for(segments, j)).collect()
    }

    /// Decode the first `prefix` original segments from at least `u` coded
    /// segments `(user_index, payload)`.
    ///
    /// Only the first `u` supplied shares are used (the paper's server
    /// starts decoding as soon as any `U` messages arrive).
    ///
    /// # Errors
    ///
    /// * [`CodingError::NotEnoughShares`] with fewer than `u` shares,
    /// * [`CodingError::ShareIndexOutOfRange`] / [`CodingError::DuplicateShareIndex`]
    ///   for malformed indices,
    /// * [`CodingError::LengthMismatch`] for ragged payloads,
    /// * [`CodingError::InvalidParameters`] if `prefix > u`.
    pub fn decode_prefix(
        &self,
        shares: &[(usize, Vec<F>)],
        prefix: usize,
    ) -> Result<Vec<Vec<F>>, CodingError> {
        if prefix > self.u {
            return Err(CodingError::InvalidParameters(format!(
                "prefix {prefix} exceeds code dimension {}",
                self.u
            )));
        }
        if shares.len() < self.u {
            return Err(CodingError::NotEnoughShares {
                got: shares.len(),
                need: self.u,
            });
        }
        let used = &shares[..self.u];
        let mut xs = Vec::with_capacity(self.u);
        let seg_len = used[0].1.len();
        // Duplicate user indices are detected up front so the error
        // names the offending *user id* — not the position a later
        // basis-setup routine happened to trip over.
        let mut seen = std::collections::BTreeSet::new();
        for (idx, payload) in used {
            if *idx >= self.n {
                return Err(CodingError::ShareIndexOutOfRange {
                    index: *idx,
                    n: self.n,
                });
            }
            if !seen.insert(*idx) {
                return Err(CodingError::DuplicateShareIndex(*idx));
            }
            if payload.len() != seg_len {
                return Err(CodingError::LengthMismatch {
                    expected: seg_len,
                    got: payload.len(),
                });
            }
            xs.push(self.points[*idx]);
        }
        // Lagrange basis over the observed points; basis[i][k] is the
        // degree-k coefficient of L_i, so
        //   coeff_k = Σ_i basis[i][k] · payload_i.
        let basis = interpolation::lagrange_basis_coefficients(&xs)?;
        // Fused multi-axpy per output segment: coeff_k accumulates all
        // U payload terms in one widened pass, reduced once per element
        // (and forked over segment chunks for large segments).
        let payloads: Vec<&[F]> = used.iter().map(|(_, p)| p.as_slice()).collect();
        let mut out = vec![vec![F::ZERO; seg_len]; prefix];
        for (k, out_k) in out.iter_mut().enumerate() {
            let coeffs: Vec<F> = basis.iter().map(|row| row[k]).collect();
            lsa_field::ops::weighted_sum_into(out_k, &coeffs, &payloads);
        }
        Ok(out)
    }

    /// Decode **all** `u` original segments (data + noise).
    ///
    /// # Errors
    ///
    /// Same as [`Self::decode_prefix`].
    pub fn decode_all(&self, shares: &[(usize, Vec<F>)]) -> Result<Vec<Vec<F>>, CodingError> {
        self.decode_prefix(shares, self.u)
    }

    /// Materialise the generator matrix `W` (`u×n`, `W[k][j] = β_j^k`).
    ///
    /// Intended for verification and tests; the encoder never builds it.
    pub fn generator_matrix(&self) -> crate::Matrix<F> {
        crate::Matrix::from_fn(self.u, self.n, |k, j| self.points[j].pow(k as u64))
    }
}

/// Split a flat vector into `parts` equal segments.
///
/// This is the mask partitioning step of the paper (`z_i` into `U−T`
/// sub-masks). The vector length must be divisible by `parts`; the protocol
/// layer zero-pads models to a multiple before masking.
///
/// # Errors
///
/// Returns [`CodingError::InvalidParameters`] if `parts == 0` or the length
/// is not divisible by `parts`.
pub fn partition<F: Field>(flat: &[F], parts: usize) -> Result<Vec<Vec<F>>, CodingError> {
    if parts == 0 || !flat.len().is_multiple_of(parts) {
        return Err(CodingError::InvalidParameters(format!(
            "cannot partition length {} into {} equal segments",
            flat.len(),
            parts
        )));
    }
    let m = flat.len() / parts;
    Ok(flat.chunks_exact(m).map(<[F]>::to_vec).collect())
}

/// Concatenate segments back into a flat vector (inverse of [`partition`]).
pub fn concatenate<F: Field>(segments: &[Vec<F>]) -> Vec<F> {
    let mut out = Vec::with_capacity(segments.iter().map(Vec::len).sum());
    for s in segments {
        out.extend_from_slice(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_field::{Fp32, Fp61};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_segments<F: Field>(u: usize, m: usize, seed: u64) -> Vec<Vec<F>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..u)
            .map(|_| lsa_field::ops::random_vector(m, &mut rng))
            .collect()
    }

    #[test]
    fn roundtrip_any_subset() {
        let code = VandermondeCode::<Fp32>::new(7, 4).unwrap();
        let segs = random_segments::<Fp32>(4, 9, 1);
        let coded = code.encode_all(&segs);
        // try several 4-subsets
        for subset in [[0, 1, 2, 3], [3, 4, 5, 6], [6, 0, 2, 5]] {
            let shares: Vec<_> = subset.iter().map(|&j| (j, coded[j].clone())).collect();
            let dec = code.decode_all(&shares).unwrap();
            assert_eq!(dec, segs);
        }
    }

    #[test]
    fn decode_prefix_only_returns_prefix() {
        let code = VandermondeCode::<Fp32>::new(5, 3).unwrap();
        let segs = random_segments::<Fp32>(3, 4, 2);
        let coded = code.encode_all(&segs);
        let shares: Vec<_> = [1usize, 2, 4]
            .iter()
            .map(|&j| (j, coded[j].clone()))
            .collect();
        let dec = code.decode_prefix(&shares, 2).unwrap();
        assert_eq!(dec.len(), 2);
        assert_eq!(dec, segs[..2].to_vec());
    }

    #[test]
    fn linearity_of_encoding() {
        // encode(a) + encode(b) == encode(a+b): the property behind the
        // one-shot aggregate-mask recovery (Eq. (6) of the paper).
        let code = VandermondeCode::<Fp32>::new(6, 3).unwrap();
        let a = random_segments::<Fp32>(3, 5, 3);
        let b = random_segments::<Fp32>(3, 5, 4);
        let sum: Vec<Vec<Fp32>> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| lsa_field::ops::add(x, y))
            .collect();
        for j in 0..6 {
            let ea = code.encode_for(&a, j);
            let eb = code.encode_for(&b, j);
            let esum = code.encode_for(&sum, j);
            assert_eq!(lsa_field::ops::add(&ea, &eb), esum);
        }
    }

    #[test]
    fn not_enough_shares_is_error() {
        let code = VandermondeCode::<Fp32>::new(5, 3).unwrap();
        let segs = random_segments::<Fp32>(3, 2, 5);
        let coded = code.encode_all(&segs);
        let shares = vec![(0, coded[0].clone()), (1, coded[1].clone())];
        assert_eq!(
            code.decode_all(&shares),
            Err(CodingError::NotEnoughShares { got: 2, need: 3 })
        );
    }

    #[test]
    fn duplicate_share_index_is_error() {
        let code = VandermondeCode::<Fp32>::new(5, 3).unwrap();
        let segs = random_segments::<Fp32>(3, 2, 6);
        let coded = code.encode_all(&segs);
        let shares = vec![
            (0, coded[0].clone()),
            (2, coded[2].clone()),
            (2, coded[2].clone()),
        ];
        // the error names the duplicated *user id*, not a basis position
        assert_eq!(
            code.decode_all(&shares),
            Err(CodingError::DuplicateShareIndex(2))
        );
    }

    #[test]
    fn out_of_range_index_is_error() {
        let code = VandermondeCode::<Fp32>::new(4, 2).unwrap();
        let segs = random_segments::<Fp32>(2, 2, 7);
        let coded = code.encode_all(&segs);
        let shares = vec![(0, coded[0].clone()), (9, coded[1].clone())];
        assert!(matches!(
            code.decode_all(&shares),
            Err(CodingError::ShareIndexOutOfRange { index: 9, n: 4 })
        ));
    }

    #[test]
    fn generator_matrix_matches_encoder() {
        let code = VandermondeCode::<Fp32>::new(5, 3).unwrap();
        let w = code.generator_matrix();
        // encode unit segments => columns of W
        for k in 0..3 {
            let mut segs = vec![vec![Fp32::ZERO; 1]; 3];
            segs[k][0] = Fp32::ONE;
            let coded = code.encode_all(&segs);
            for j in 0..5 {
                assert_eq!(coded[j][0], w[(k, j)]);
            }
        }
    }

    #[test]
    fn generator_is_t_private_mds() {
        // U = 4, T = 2: bottom-T-rows submatrix must itself be MDS
        // (definition of T-private in §4.1 of the paper).
        let code = VandermondeCode::<Fp32>::new(6, 4).unwrap();
        let w = code.generator_matrix();
        assert!(w.is_mds());
        let bottom = w.submatrix(&[2, 3], &(0..6).collect::<Vec<_>>());
        assert!(bottom.is_mds());
    }

    #[test]
    fn partition_concatenate_roundtrip() {
        let mut rng = StdRng::seed_from_u64(8);
        let flat = lsa_field::ops::random_vector::<Fp32, _>(12, &mut rng);
        let parts = partition(&flat, 4).unwrap();
        assert_eq!(parts.len(), 4);
        assert_eq!(concatenate(&parts), flat);
    }

    #[test]
    fn partition_rejects_indivisible() {
        let flat = vec![Fp32::ZERO; 10];
        assert!(partition(&flat, 3).is_err());
        assert!(partition(&flat, 0).is_err());
    }

    #[test]
    fn works_over_fp61() {
        let code = VandermondeCode::<Fp61>::new(8, 5).unwrap();
        let segs = random_segments::<Fp61>(5, 6, 9);
        let coded = code.encode_all(&segs);
        let shares: Vec<_> = [7usize, 5, 3, 1, 0]
            .iter()
            .map(|&j| (j, coded[j].clone()))
            .collect();
        assert_eq!(code.decode_all(&shares).unwrap(), segs);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(VandermondeCode::<Fp32>::new(3, 0).is_err());
        assert!(VandermondeCode::<Fp32>::new(3, 4).is_err());
    }
}
