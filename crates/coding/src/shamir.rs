//! Shamir `t`-out-of-`n` secret sharing (Shamir 1979).
//!
//! Used by the SecAgg and SecAgg+ baselines: every user Shamir-shares its
//! private PRG seed `b_i` and its secret key `sk_i` so the server can
//! reconstruct exactly one of them per user during dropout recovery
//! (Bonawitz et al. 2017, §3 of the LightSecAgg paper).
//!
//! A secret `s ∈ F` is hidden in the constant term of a uniformly random
//! polynomial `f` of degree `t`; share `j` is `f(α_j)` for a fixed public
//! point `α_j ≠ 0`. Any `t+1` shares reconstruct `f(0) = s` by Lagrange
//! interpolation; any `t` shares are statistically independent of `s`.

use crate::{interpolation, CodingError};
use lsa_field::{evaluation_points, Field};
use rand::Rng;

/// One Shamir share: the evaluation of the sharing polynomial at the
/// holder's public point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Share<F> {
    /// Index of the holder (0-based; the evaluation point is `index + 1`).
    pub index: usize,
    /// The share value `f(α_index)`.
    pub value: F,
}

/// A `t`-out-of-`n` Shamir sharing scheme over field `F`.
///
/// `threshold` is the paper's `T`: up to `threshold` colluding holders
/// learn nothing; `threshold + 1` shares reconstruct.
///
/// # Example
///
/// ```
/// use lsa_coding::ShamirScheme;
/// use lsa_field::Fp32;
/// use rand::SeedableRng;
///
/// let scheme = ShamirScheme::<Fp32>::new(5, 2).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let secret = Fp32::from(123u32);
/// let shares = scheme.share(secret, &mut rng);
/// let rec = scheme.reconstruct(&shares[1..4]).unwrap();
/// assert_eq!(rec, secret);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShamirScheme<F> {
    n: usize,
    threshold: usize,
    points: Vec<F>,
}

impl<F: Field> ShamirScheme<F> {
    /// Create a scheme distributing `n` shares with privacy threshold
    /// `threshold` (degree of the sharing polynomial).
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::InvalidParameters`] unless
    /// `threshold < n` and `n ≥ 1`.
    pub fn new(n: usize, threshold: usize) -> Result<Self, CodingError> {
        if n == 0 || threshold >= n {
            return Err(CodingError::InvalidParameters(format!(
                "need threshold < n and n >= 1, got threshold={threshold}, n={n}"
            )));
        }
        Ok(Self {
            n,
            threshold,
            points: evaluation_points(n),
        })
    }

    /// Number of shares produced.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Privacy threshold `t` (need `t+1` shares to reconstruct).
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Share a single secret.
    pub fn share<R: Rng + ?Sized>(&self, secret: F, rng: &mut R) -> Vec<Share<F>> {
        // f(x) = secret + c_1 x + … + c_t x^t with uniform c_k.
        let mut coeffs = Vec::with_capacity(self.threshold + 1);
        coeffs.push(secret);
        for _ in 0..self.threshold {
            coeffs.push(F::random(rng));
        }
        self.points
            .iter()
            .enumerate()
            .map(|(index, &x)| {
                // Horner evaluation of f at x.
                let mut acc = F::ZERO;
                for &c in coeffs.iter().rev() {
                    acc = acc * x + c;
                }
                Share { index, value: acc }
            })
            .collect()
    }

    /// Share a vector of secrets element-wise (independent polynomials, the
    /// same holder points). Share `j` of the result holds the `j`-th
    /// evaluation of every element polynomial.
    pub fn share_vector<R: Rng + ?Sized>(&self, secrets: &[F], rng: &mut R) -> Vec<Vec<Share<F>>> {
        let mut per_holder: Vec<Vec<Share<F>>> = (0..self.n)
            .map(|_| Vec::with_capacity(secrets.len()))
            .collect();
        for &s in secrets {
            for sh in self.share(s, rng) {
                per_holder[sh.index].push(sh);
            }
        }
        per_holder
    }

    /// Reconstruct the secret from at least `threshold + 1` shares.
    ///
    /// Only the first `threshold + 1` shares are used.
    ///
    /// # Errors
    ///
    /// * [`CodingError::NotEnoughShares`] with fewer than `t+1` shares,
    /// * [`CodingError::ShareIndexOutOfRange`] / [`CodingError::DuplicateShareIndex`]
    ///   for malformed share indices.
    pub fn reconstruct(&self, shares: &[Share<F>]) -> Result<F, CodingError> {
        let need = self.threshold + 1;
        if shares.len() < need {
            return Err(CodingError::NotEnoughShares {
                got: shares.len(),
                need,
            });
        }
        let used = &shares[..need];
        let mut xs = Vec::with_capacity(need);
        for sh in used {
            if sh.index >= self.n {
                return Err(CodingError::ShareIndexOutOfRange {
                    index: sh.index,
                    n: self.n,
                });
            }
            xs.push(self.points[sh.index]);
        }
        let weights = interpolation::lagrange_weights_at(&xs, F::ZERO)?;
        Ok(used.iter().zip(&weights).map(|(sh, &w)| sh.value * w).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_field::{Fp32, Fp61};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn share_reconstruct_roundtrip() {
        let scheme = ShamirScheme::<Fp32>::new(7, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let secret = Fp32::from_u64(987654);
        let shares = scheme.share(secret, &mut rng);
        assert_eq!(shares.len(), 7);
        // any 4 shares reconstruct
        for subset in [[0usize, 1, 2, 3], [3, 4, 5, 6], [6, 4, 2, 0]] {
            let sel: Vec<_> = subset.iter().map(|&i| shares[i]).collect();
            assert_eq!(scheme.reconstruct(&sel).unwrap(), secret);
        }
    }

    #[test]
    fn too_few_shares_fail() {
        let scheme = ShamirScheme::<Fp32>::new(5, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let shares = scheme.share(Fp32::ONE, &mut rng);
        assert!(matches!(
            scheme.reconstruct(&shares[..2]),
            Err(CodingError::NotEnoughShares { got: 2, need: 3 })
        ));
    }

    #[test]
    fn t_shares_leak_nothing_statistically() {
        // With threshold t, the joint distribution of any t shares is
        // independent of the secret. Empirically: share two different
        // secrets with the same RNG stream consumed independently and
        // check a chi-square-ish invariance of a single share's residue
        // distribution. We use a cheap proxy: over many trials the
        // distribution of (share value mod 16) should be near-uniform for
        // both secrets.
        let scheme = ShamirScheme::<Fp32>::new(4, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [[0u32; 16]; 2];
        for trial in 0..4000 {
            for (s_idx, secret) in [Fp32::ZERO, Fp32::from_u64(u32::MAX as u64)]
                .into_iter()
                .enumerate()
            {
                let shares = scheme.share(secret, &mut rng);
                let v = shares[trial % 4].value.residue() % 16;
                buckets[s_idx][v as usize] += 1;
            }
        }
        for b in buckets {
            for count in b {
                // expectation 250; allow generous slack
                assert!((150..350).contains(&count), "bucket count {count}");
            }
        }
    }

    #[test]
    fn share_vector_reconstructs_elementwise() {
        let scheme = ShamirScheme::<Fp61>::new(6, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let secrets: Vec<Fp61> = lsa_field::ops::random_vector(5, &mut rng);
        let per_holder = scheme.share_vector(&secrets, &mut rng);
        assert_eq!(per_holder.len(), 6);
        // reconstruct element k from holders {1, 3, 5}
        for k in 0..5 {
            let sel = [per_holder[1][k], per_holder[3][k], per_holder[5][k]];
            assert_eq!(scheme.reconstruct(&sel).unwrap(), secrets[k]);
        }
    }

    #[test]
    fn invalid_parameters() {
        assert!(ShamirScheme::<Fp32>::new(0, 0).is_err());
        assert!(ShamirScheme::<Fp32>::new(3, 3).is_err());
    }

    #[test]
    fn duplicate_share_rejected() {
        let scheme = ShamirScheme::<Fp32>::new(4, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let shares = scheme.share(Fp32::ONE, &mut rng);
        let dup = [shares[0], shares[0]];
        assert!(matches!(
            scheme.reconstruct(&dup),
            Err(CodingError::DuplicateShareIndex(_))
        ));
    }
}
