//! End-to-end: a two-level N = 256, G = 4 tree as real OS processes on
//! 127.0.0.1, asserting the root's aggregate is bit-identical to the
//! single-process `MemTransport` run (the runner's `local` mode exits
//! non-zero on any divergence).

use std::process::Command;

fn runner() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lsa-runner"))
}

#[test]
fn two_level_loopback_matches_in_memory_run() {
    let out = runner()
        .args([
            "local", "--n", "256", "--branch", "4,4", "--rounds", "2", "--d", "32", "--seed", "7",
        ])
        .output()
        .expect("spawn runner");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "runner failed:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert_eq!(
        stdout.matches("MATCH").count(),
        2,
        "expected 2 matched rounds:\n{stdout}"
    );
    // the root emits one RoundReport JSON line per round, in the same
    // schema as the scenario_matrix bench records
    let reports: Vec<&str> = stdout
        .lines()
        .filter(|l| l.contains("\"name\":\"runner/root\""))
        .collect();
    assert_eq!(reports.len(), 2, "expected 2 telemetry lines:\n{stdout}");
    for line in reports {
        for key in [
            "\"round\":",
            "\"phases\":",
            "\"collect\":",
            "\"payload_bytes\":",
            "\"framing_bytes\":",
            "\"envelopes\":4",
            "\"events\":",
            "\"available_parallelism\":",
            "\"lsa_threads\":",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }
}

#[test]
fn flat_leaves_and_other_seeds_also_match() {
    // different shape: 8 leaf children of 8 clients each, 1 round
    let out = runner()
        .args([
            "local", "--n", "64", "--branch", "8", "--rounds", "1", "--d", "16", "--seed", "42",
        ])
        .output()
        .expect("spawn runner");
    assert!(
        out.status.success(),
        "runner failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn malformed_flags_fail_fast() {
    let out = runner()
        .args(["child", "--index", "9", "--connect", "127.0.0.1:1"])
        .output()
        .expect("spawn runner");
    assert!(!out.status.success(), "missing --n must fail");
    let out = runner()
        .args(["local", "--branch", "0"])
        .output()
        .expect("spawn runner");
    assert!(!out.status.success(), "zero branch must fail");
}
