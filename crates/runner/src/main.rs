//! Process-per-subtree distributed runner.
//!
//! Executes a two-level aggregator tree as real OS processes: `G`
//! mid-level aggregator processes each own one subtree of the client
//! population (running the full LightSecAgg offline/online/recovery
//! pipeline in-process over `MemTransport`), and a root process owns
//! nothing but a listening socket — per round it receives exactly one
//! Wire-v2 [`Envelope::MaskedModel`] frame from each child carrying the
//! subtree's recovered aggregate, and sums the `G` vectors. Secure
//! aggregation is exact in the field, so the root's sum is bit-identical
//! to a single-process `GroupedFederation` run over the same cohort and
//! updates — `local` mode asserts exactly that.
//!
//! Modes:
//!
//! ```text
//! lsa-runner root  --listen 127.0.0.1:4700 --children 4 --rounds 2 --d 32
//! lsa-runner child --index 1 --connect 127.0.0.1:4700 \
//!                  --n 256 --branch 4,4 --rounds 2 --d 32 --seed 7
//! lsa-runner local --n 256 --branch 4,4 --rounds 2 --d 32 --seed 7
//! ```
//!
//! `local` spawns the `G = branch[0]` children itself (re-invoking the
//! current executable), plays the root on an OS-assigned loopback port,
//! runs the in-memory reference federation, and exits non-zero on any
//! byte of disagreement.

use lsa_field::{Field, Fp61};
use lsa_net::{NodeId, TcpTransport, FRAME_OVERHEAD};
use lsa_protocol::telemetry::{EventCounters, RoundReport};
use lsa_protocol::topology::{GroupTopology, GroupedFederation};
use lsa_protocol::transport::PhaseTiming;
use lsa_protocol::{
    Envelope, MaskedModel, MemTransport, ProtocolError, Recipient, SecureAggregator, Transport,
};
use std::collections::BTreeMap;
use std::io::Write;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Threshold/survivor fractions for every leaf: tolerate `n_g/4`
/// colluders, require 90% survivors (the paper's robust operating
/// point; exactness does not depend on them with a full cohort).
const T_FRAC: f64 = 0.25;
const U_FRAC: f64 = 0.9;

/// How long the root waits for the next child frame before giving up.
const ROUND_TIMEOUT: Duration = Duration::from_secs(120);

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = argv.first().map(String::as_str) else {
        eprintln!("usage: lsa-runner <root|child|local> [--key value ...]");
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(&argv[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run = match mode {
        "root" => run_root(&opts),
        "child" => run_child(&opts),
        "local" => run_local(&opts),
        other => Err(format!("unknown mode {other:?}")),
    };
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------

struct Opts {
    map: BTreeMap<String, String>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut map = BTreeMap::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --flag, got {key:?}"));
            };
            let Some(value) = it.next() else {
                return Err(format!("--{name} needs a value"));
            };
            map.insert(name.to_string(), value.clone());
        }
        Ok(Self { map })
    }

    fn get(&self, name: &str) -> Result<&str, String> {
        self.map
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing --{name}"))
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: Option<T>) -> Result<T, String> {
        match self.map.get(name) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
            None => default.ok_or_else(|| format!("missing --{name}")),
        }
    }

    fn branch(&self) -> Result<Vec<usize>, String> {
        let raw = self.map.get("branch").map(String::as_str).unwrap_or("4");
        let levels: Result<Vec<usize>, _> = raw.split(',').map(str::parse).collect();
        let levels = levels.map_err(|_| format!("--branch: cannot parse {raw:?}"))?;
        if levels.is_empty() || levels.contains(&0) {
            return Err(format!("--branch: need non-zero levels, got {raw:?}"));
        }
        Ok(levels)
    }
}

// ---------------------------------------------------------------------
// Deterministic workload
// ---------------------------------------------------------------------

/// splitmix64 — the deterministic per-(client, round, coordinate)
/// update generator every process agrees on.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Client `global_id`'s quantized update for round `round`.
fn update(seed: u64, global_id: usize, round: u64, d: usize) -> Vec<Fp61> {
    (0..d)
        .map(|k| {
            let mix = splitmix64(
                seed ^ (global_id as u64).wrapping_mul(0x517c_c1b7_2722_0a95)
                    ^ round.wrapping_mul(0x2545_f491_4f6c_dd1d)
                    ^ k as u64,
            );
            Fp61::from_u64(mix % Fp61::MODULUS)
        })
        .collect()
}

/// FNV-1a over the canonical residues — the digest the root prints so
/// shell harnesses can compare runs without parsing vectors.
fn digest(aggregate: &[Fp61]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in aggregate {
        for b in x.residue().to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

// ---------------------------------------------------------------------
// Child: one subtree, full protocol in-process, aggregate up over TCP
// ---------------------------------------------------------------------

/// Run subtree `index`'s federation for all rounds and push each
/// round's recovered aggregate to the root.
fn run_child(opts: &Opts) -> Result<(), String> {
    let index: usize = opts.num("index", None)?;
    let connect = opts.get("connect")?.to_string();
    let n: usize = opts.num("n", None)?;
    let branch = opts.branch()?;
    let rounds: u64 = opts.num("rounds", Some(1))?;
    let d: usize = opts.num("d", Some(32))?;
    let seed: u64 = opts.num("seed", Some(7))?;

    let (sub, offset) = subtree(n, &branch, d, index)?;
    let n_sub = sub.n();
    let mut fed = GroupedFederation::<Fp61>::new(sub, MemTransport::new(), seed ^ index as u64)
        .map_err(|e| format!("child {index}: building federation: {e}"))?;

    let mut tcp = TcpTransport::new(NodeId::Client(index));
    tcp.dial_retry(NodeId::Server, connect.as_str(), Duration::from_secs(30))
        .map_err(|e| format!("child {index}: dialing root at {connect}: {e}"))?;

    let cohort: Vec<usize> = (0..n_sub).collect();
    for t in 0..rounds {
        let outcome = run_subtree_round(&mut fed, &cohort, seed, offset, t, d)
            .map_err(|e| format!("child {index}: round {t}: {e}"))?;
        let envelope: Envelope<Fp61> = Envelope::MaskedModel(MaskedModel {
            from: index,
            group: index,
            round: t,
            payload: outcome,
        });
        Transport::<Fp61>::send(
            &mut tcp,
            Recipient::Client(index),
            Recipient::Server,
            &envelope,
        )
        .map_err(|e| format!("child {index}: uploading round {t}: {e}"))?;
        tcp.flush_phase("subtree-upload");
    }
    eprintln!(
        "child {index}: {rounds} round(s) done, {} clients, {} bytes up",
        n_sub,
        TcpTransport::bytes_sent(&tcp)
    );
    Ok(())
}

/// One full LightSecAgg round on a subtree federation; returns the
/// recovered aggregate.
fn run_subtree_round(
    fed: &mut GroupedFederation<Fp61>,
    cohort: &[usize],
    seed: u64,
    offset: usize,
    round: u64,
    d: usize,
) -> Result<Vec<Fp61>, ProtocolError> {
    fed.open_round(cohort)?;
    for &j in cohort {
        fed.submit(j, &update(seed, offset + j, round, d))?;
    }
    Ok(fed.finish_round()?.aggregate)
}

/// The `index`-th top-level subtree of the shared tree, plus the global
/// client id where its local namespace starts.
fn subtree(
    n: usize,
    branch: &[usize],
    d: usize,
    index: usize,
) -> Result<(GroupTopology, usize), String> {
    let topo = GroupTopology::hierarchical(n, branch, T_FRAC, U_FRAC, d)
        .map_err(|e| format!("building topology: {e}"))?;
    let subs = topo.child_topologies();
    if index >= subs.len() {
        return Err(format!(
            "--index {index} out of range: the tree has {} top-level subtrees",
            subs.len()
        ));
    }
    let offset = subs[..index].iter().map(GroupTopology::n).sum();
    Ok((subs[index].clone(), offset))
}

// ---------------------------------------------------------------------
// Root: collect G aggregates per round, sum, report
// ---------------------------------------------------------------------

/// One round's in-flight state at the root: the running sum plus the
/// traffic the root's [`RoundReport`] is cut from.
struct RoundCollect {
    sum: Vec<Fp61>,
    seen: usize,
    bytes: usize,
    arrivals: Vec<f64>,
}

/// Per-round sums collected by the root, in round order, each paired
/// with the root's telemetry for that round: the payload bytes and
/// frame count the children uploaded, TCP framing overhead reported
/// separately (one header per frame), and a `"collect"` phase spanning
/// the wall-clock window from the round's first child arrival to its
/// last.
fn collect_root(
    tcp: &mut TcpTransport,
    children: usize,
    rounds: u64,
    d: usize,
) -> Result<Vec<(Vec<Fp61>, RoundReport)>, String> {
    let clock = Instant::now();
    let mut slots: BTreeMap<u64, RoundCollect> = BTreeMap::new();
    let mut done = 0u64;
    while done < rounds {
        let delivery = tcp
            .recv_bytes_timeout(ROUND_TIMEOUT)
            .map_err(|e| format!("root: receive failed: {e}"))?
            .ok_or_else(|| format!("root: timed out with {done}/{rounds} rounds complete"))?;
        let arrived = clock.elapsed().as_secs_f64();
        let frame_bytes = delivery.payload.len();
        let envelope = Envelope::<Fp61>::from_bytes(&delivery.payload)
            .map_err(|e| format!("root: undecodable frame from {:?}: {e}", delivery.from))?;
        let Envelope::MaskedModel(m) = envelope else {
            return Err(format!(
                "root: unexpected {} envelope from {:?}",
                envelope.kind(),
                delivery.from
            ));
        };
        if m.round >= rounds {
            return Err(format!(
                "root: child {} sent round {} >= {rounds}",
                m.from, m.round
            ));
        }
        if m.payload.len() != d {
            return Err(format!(
                "root: child {} sent {} elements, expected {d}",
                m.from,
                m.payload.len()
            ));
        }
        let slot = slots.entry(m.round).or_insert_with(|| RoundCollect {
            sum: vec![Fp61::ZERO; d],
            seen: 0,
            bytes: 0,
            arrivals: Vec::new(),
        });
        for (acc, x) in slot.sum.iter_mut().zip(&m.payload) {
            *acc += *x;
        }
        slot.seen += 1;
        slot.bytes += frame_bytes;
        slot.arrivals.push(arrived);
        if slot.seen == children {
            done += 1;
        }
    }
    Ok(slots
        .into_iter()
        .map(|(round, slot)| {
            let phase = PhaseTiming {
                label: "collect",
                start: slot.arrivals.first().copied().unwrap_or(0.0),
                end: slot.arrivals.last().copied().unwrap_or(0.0),
                messages: slot.seen,
                bytes: slot.bytes,
                arrivals: slot.arrivals,
            };
            let report = RoundReport {
                round,
                phases: vec![phase],
                payload_bytes: slot.bytes,
                framing_bytes: slot.seen * FRAME_OVERHEAD,
                envelopes: slot.seen,
                events: EventCounters::default(),
            };
            (slot.sum, report)
        })
        .collect())
}

/// Print each collected round: the shell-comparable digest line plus
/// the same one-line `RoundReport` JSON record the `scenario_matrix`
/// bench emits, appended to `LSA_BENCH_JSON` when set so distributed
/// runs land in the same artifact as in-memory benches.
fn report_rounds(collected: &[(Vec<Fp61>, RoundReport)]) -> Result<(), String> {
    let mut sink = match std::env::var_os("LSA_BENCH_JSON") {
        Some(path) => Some(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| format!("root: opening LSA_BENCH_JSON: {e}"))?,
        ),
        None => None,
    };
    for (t, (sum, report)) in collected.iter().enumerate() {
        println!("round={t} digest={:#018x}", digest(sum));
        let json = report.to_json("runner/root", 1);
        println!("{json}");
        if let Some(f) = &mut sink {
            writeln!(f, "{json}").map_err(|e| format!("root: appending LSA_BENCH_JSON: {e}"))?;
        }
    }
    Ok(())
}

fn run_root(opts: &Opts) -> Result<(), String> {
    let listen = opts.get("listen")?;
    let children: usize = opts.num("children", None)?;
    let rounds: u64 = opts.num("rounds", Some(1))?;
    let d: usize = opts.num("d", Some(32))?;
    let mut tcp = TcpTransport::bind(NodeId::Server, listen)
        .map_err(|e| format!("root: binding {listen}: {e}"))?;
    let collected = collect_root(&mut tcp, children, rounds, d)?;
    report_rounds(&collected)
}

// ---------------------------------------------------------------------
// Local: spawn children, play root, check against the in-memory run
// ---------------------------------------------------------------------

fn run_local(opts: &Opts) -> Result<(), String> {
    let n: usize = opts.num("n", Some(256))?;
    let branch = opts.branch()?;
    let rounds: u64 = opts.num("rounds", Some(2))?;
    let d: usize = opts.num("d", Some(32))?;
    let seed: u64 = opts.num("seed", Some(7))?;
    let children = branch[0];
    let branch_arg = branch
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(",");

    // the root's listener, on an OS-assigned loopback port
    let mut tcp = TcpTransport::bind(NodeId::Server, "127.0.0.1:0")
        .map_err(|e| format!("local: binding loopback: {e}"))?;
    let addr = tcp.local_addr().expect("bound transport has an address");

    let exe = std::env::current_exe().map_err(|e| format!("local: current_exe: {e}"))?;
    let mut procs = Vec::with_capacity(children);
    for g in 0..children {
        let child = std::process::Command::new(&exe)
            .args([
                "child",
                "--index",
                &g.to_string(),
                "--connect",
                &addr.to_string(),
                "--n",
                &n.to_string(),
                "--branch",
                &branch_arg,
                "--rounds",
                &rounds.to_string(),
                "--d",
                &d.to_string(),
                "--seed",
                &seed.to_string(),
            ])
            .spawn()
            .map_err(|e| format!("local: spawning child {g}: {e}"))?;
        procs.push(child);
    }

    let distributed = collect_root(&mut tcp, children, rounds, d);
    // reap before judging, so failures report the child's exit too
    let mut child_failures = Vec::new();
    for (g, mut p) in procs.into_iter().enumerate() {
        match p.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => child_failures.push(format!("child {g} exited with {status}")),
            Err(e) => child_failures.push(format!("child {g} unreaped: {e}")),
        }
    }
    if !child_failures.is_empty() {
        return Err(child_failures.join("; "));
    }
    let distributed = distributed?;

    let reference = reference_run(n, &branch, rounds, d, seed)?;
    for t in 0..rounds as usize {
        if distributed[t].0 != reference[t] {
            return Err(format!(
                "round {t}: distributed aggregate diverges from the in-memory run \
                 (digest {:#018x} vs {:#018x})",
                digest(&distributed[t].0),
                digest(&reference[t])
            ));
        }
        println!(
            "round={t} digest={:#018x} children={children} MATCH",
            digest(&distributed[t].0)
        );
        println!("{}", distributed[t].1.to_json("runner/root", 1));
    }
    Ok(())
}

/// The single-process run the distributed one must reproduce exactly:
/// one `GroupedFederation` over the whole tree, same cohort, same
/// updates.
fn reference_run(
    n: usize,
    branch: &[usize],
    rounds: u64,
    d: usize,
    seed: u64,
) -> Result<Vec<Vec<Fp61>>, String> {
    let topo = GroupTopology::hierarchical(n, branch, T_FRAC, U_FRAC, d)
        .map_err(|e| format!("reference: topology: {e}"))?;
    let mut fed = GroupedFederation::<Fp61>::new(topo, MemTransport::new(), seed)
        .map_err(|e| format!("reference: federation: {e}"))?;
    let cohort: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(rounds as usize);
    for t in 0..rounds {
        fed.open_round(&cohort)
            .map_err(|e| format!("reference: open {t}: {e}"))?;
        for &i in &cohort {
            fed.submit(i, &update(seed, i, t, d))
                .map_err(|e| format!("reference: submit {i}@{t}: {e}"))?;
        }
        out.push(
            fed.finish_round()
                .map_err(|e| format!("reference: finish {t}: {e}"))?
                .aggregate,
        );
    }
    Ok(out)
}
