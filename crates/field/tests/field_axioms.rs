//! Property-based tests of the field axioms for both fields.

use lsa_field::{Field, Fp32, Fp61};
use proptest::prelude::*;

fn fp32() -> impl Strategy<Value = Fp32> {
    any::<u64>().prop_map(Fp32::from_u64)
}

fn fp61() -> impl Strategy<Value = Fp61> {
    any::<u64>().prop_map(Fp61::from_u64)
}

macro_rules! axiom_tests {
    ($modname:ident, $strat:ident, $F:ty) => {
        mod $modname {
            use super::*;

            proptest! {
                #[test]
                fn add_commutative(a in $strat(), b in $strat()) {
                    prop_assert_eq!(a + b, b + a);
                }

                #[test]
                fn add_associative(a in $strat(), b in $strat(), c in $strat()) {
                    prop_assert_eq!((a + b) + c, a + (b + c));
                }

                #[test]
                fn mul_commutative(a in $strat(), b in $strat()) {
                    prop_assert_eq!(a * b, b * a);
                }

                #[test]
                fn mul_associative(a in $strat(), b in $strat(), c in $strat()) {
                    prop_assert_eq!((a * b) * c, a * (b * c));
                }

                #[test]
                fn distributive(a in $strat(), b in $strat(), c in $strat()) {
                    prop_assert_eq!(a * (b + c), a * b + a * c);
                }

                #[test]
                fn additive_inverse(a in $strat()) {
                    prop_assert_eq!(a + (-a), <$F>::ZERO);
                }

                #[test]
                fn multiplicative_inverse(a in $strat()) {
                    if !a.is_zero() {
                        let inv = a.inv().unwrap();
                        prop_assert_eq!(a * inv, <$F>::ONE);
                    }
                }

                #[test]
                fn sub_is_add_neg(a in $strat(), b in $strat()) {
                    prop_assert_eq!(a - b, a + (-b));
                }

                #[test]
                fn residue_is_canonical(a in $strat()) {
                    prop_assert!(a.residue() < <$F>::MODULUS);
                }

                #[test]
                fn pow_adds_exponents(a in $strat(), e1 in 0u64..1000, e2 in 0u64..1000) {
                    prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
                }

                #[test]
                fn signed_embedding_roundtrip(v in -(1i64 << 30)..(1i64 << 30)) {
                    prop_assert_eq!(<$F>::from_i64(v).to_signed(), v);
                }

                #[test]
                fn from_u64_is_mod_reduction(v in any::<u64>()) {
                    prop_assert_eq!(<$F>::from_u64(v).residue(), v % <$F>::MODULUS);
                }
            }
        }
    };
}

axiom_tests!(fp32_axioms, fp32, Fp32);
axiom_tests!(fp61_axioms, fp61, Fp61);

proptest! {
    /// The `ops` kernels agree with naive elementwise computation.
    #[test]
    fn ops_axpy_matches_naive(
        xs in proptest::collection::vec(any::<u64>(), 1..64),
        ys in proptest::collection::vec(any::<u64>(), 1..64),
        c in any::<u64>(),
    ) {
        let n = xs.len().min(ys.len());
        let x: Vec<Fp32> = xs[..n].iter().map(|&v| Fp32::from_u64(v)).collect();
        let y: Vec<Fp32> = ys[..n].iter().map(|&v| Fp32::from_u64(v)).collect();
        let c = Fp32::from_u64(c);

        let mut acc = y.clone();
        lsa_field::ops::axpy(&mut acc, c, &x);
        for k in 0..n {
            prop_assert_eq!(acc[k], y[k] + c * x[k]);
        }
    }

    /// Horner evaluation equals the naive power-sum definition.
    #[test]
    fn horner_matches_power_sum(
        coeffs in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 3), 1..8),
        point in any::<u64>(),
    ) {
        let segs: Vec<Vec<Fp32>> = coeffs
            .iter()
            .map(|seg| seg.iter().map(|&v| Fp32::from_u64(v)).collect())
            .collect();
        let p = Fp32::from_u64(point);
        let got = lsa_field::ops::horner_eval(&segs, p);
        for e in 0..3 {
            let want: Fp32 = segs
                .iter()
                .enumerate()
                .map(|(k, seg)| seg[e] * p.pow(k as u64))
                .sum();
            prop_assert_eq!(got[e], want);
        }
    }
}
