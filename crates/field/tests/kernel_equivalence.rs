//! Equivalence of every delayed-reduction bulk kernel against the
//! one-reduction-per-op scalar reference, for both fields.
//!
//! The lazy kernels accumulate partially-folded terms in the widened
//! domain and reduce once per output element; these properties pin that
//! the optimisation never changes a single residue — including at the
//! all-`(q−1)` worst case that stresses the accumulator overflow
//! bounds, and across serial vs forked execution.
//!
//! Every oracle comparison runs once per compiled-in SIMD backend
//! (forced through [`simd::with_backend`]), so the scalar path and each
//! hand-written kernel are held to the identical-residue contract on
//! the same inputs. On hosts without AVX2 the sweep degenerates to the
//! scalar backend alone.

use lsa_field::{ops, par, simd, Field, Fp32, Fp61};
use proptest::prelude::*;

/// Run `f` once per backend this host can execute, pinned.
fn for_each_backend(mut f: impl FnMut(simd::Backend)) {
    for b in simd::available() {
        simd::with_backend(b, || f(b));
    }
}

fn fp32() -> impl Strategy<Value = Fp32> {
    any::<u64>().prop_map(Fp32::from_u64)
}

fn fp61() -> impl Strategy<Value = Fp61> {
    any::<u64>().prop_map(Fp61::from_u64)
}

fn vec32(len: core::ops::Range<usize>) -> impl Strategy<Value = Vec<Fp32>> {
    proptest::collection::vec(fp32(), len)
}

fn vec61(len: core::ops::Range<usize>) -> impl Strategy<Value = Vec<Fp61>> {
    proptest::collection::vec(fp61(), len)
}

macro_rules! kernel_equivalence {
    ($modname:ident, $scalar:ident, $vector:ident, $F:ty) => {
        mod $modname {
            use super::*;

            proptest! {
                #[test]
                fn axpy_matches_reference(
                    acc in $vector(1..200),
                    c in $scalar(),
                ) {
                    let x: Vec<$F> = acc.iter().map(|&v| v + c).collect();
                    for_each_backend(|b| {
                        let mut lazy = acc.clone();
                        let mut expect = acc.clone();
                        ops::axpy(&mut lazy, c, &x);
                        ops::reference::axpy(&mut expect, c, &x);
                        assert_eq!(lazy, expect, "backend {}", b.name());
                    });
                }

                #[test]
                fn dot_matches_reference(x in $vector(1..200), seed in $scalar()) {
                    let y: Vec<$F> = x.iter().map(|&v| v * seed + seed).collect();
                    let expect = ops::reference::dot(&x, &y);
                    for_each_backend(|b| {
                        assert_eq!(ops::dot(&x, &y), expect, "backend {}", b.name());
                    });
                }

                #[test]
                fn weighted_sum_matches_reference(
                    base in $vector(1..150),
                    coeffs in proptest::collection::vec($scalar(), 1..12),
                    mix in $scalar(),
                ) {
                    let inputs: Vec<Vec<$F>> = coeffs
                        .iter()
                        .enumerate()
                        .map(|(i, &c)| {
                            base.iter()
                                .map(|&v| v * c + mix * <$F>::from_u64(i as u64 + 1))
                                .collect()
                        })
                        .collect();
                    let refs: Vec<&[$F]> = inputs.iter().map(Vec::as_slice).collect();
                    let mut sweep = base.clone();
                    ops::reference::weighted_sum_into(&mut sweep, &coeffs, &refs);
                    for_each_backend(|b| {
                        let mut fused = base.clone();
                        ops::weighted_sum_into(&mut fused, &coeffs, &refs);
                        assert_eq!(fused, sweep, "backend {}", b.name());
                    });
                }

                #[test]
                fn sum_vectors_matches_reference(
                    base in $vector(1..150),
                    count in 1usize..10,
                    mix in $scalar(),
                ) {
                    let vecs: Vec<Vec<$F>> = (0..count)
                        .map(|i| {
                            base.iter()
                                .map(|&v| v + mix * <$F>::from_u64(i as u64))
                                .collect()
                        })
                        .collect();
                    let eager =
                        ops::reference::sum_vectors(vecs.iter().map(Vec::as_slice))
                            .unwrap();
                    for_each_backend(|b| {
                        let lazy =
                            ops::sum_vectors(vecs.iter().map(Vec::as_slice)).unwrap();
                        assert_eq!(lazy, eager, "backend {}", b.name());
                    });
                }

                #[test]
                fn horner_eval_matches_reference(
                    base in $vector(1..80),
                    degree in 1usize..10,
                    point in $scalar(),
                    mix in $scalar(),
                ) {
                    let segs: Vec<Vec<$F>> = (0..degree)
                        .map(|k| {
                            base.iter()
                                .map(|&v| v * <$F>::from_u64(k as u64 + 1) + mix)
                                .collect()
                        })
                        .collect();
                    let expect = ops::reference::horner_eval(&segs, point);
                    for_each_backend(|b| {
                        assert_eq!(
                            ops::horner_eval(&segs, point),
                            expect,
                            "backend {}",
                            b.name()
                        );
                    });
                }

                #[test]
                fn wide_running_sum_matches_eager(
                    base in $vector(1..100),
                    count in 1usize..12,
                ) {
                    let vecs: Vec<Vec<$F>> = (0..count)
                        .map(|i| {
                            base.iter()
                                .map(|&v| v + <$F>::from_u64(i as u64))
                                .collect()
                        })
                        .collect();
                    let mut eager = vec![<$F>::ZERO; base.len()];
                    for v in &vecs {
                        for (a, b) in eager.iter_mut().zip(v) {
                            *a += *b;
                        }
                    }
                    for_each_backend(|b| {
                        let mut wide = ops::wide_zeros::<$F>(base.len());
                        for v in &vecs {
                            ops::wide_accumulate::<$F>(&mut wide, v);
                        }
                        assert_eq!(
                            ops::wide_collapse::<$F>(&wide),
                            eager,
                            "backend {}",
                            b.name()
                        );
                    });
                }

                #[test]
                fn parallel_kernels_bit_identical_to_serial(
                    seed in $scalar(),
                    c in $scalar(),
                ) {
                    // long enough to clear MIN_PAR_LEN so forking happens
                    let len = par::MIN_PAR_LEN + 101;
                    let x: Vec<$F> = (0..len)
                        .map(|i| seed * <$F>::from_u64(i as u64 + 1) + c)
                        .collect();
                    let acc0: Vec<$F> =
                        (0..len).map(|i| c * <$F>::from_u64(i as u64)).collect();
                    for_each_backend(|b| {
                        let mut serial = acc0.clone();
                        let mut forked = acc0.clone();
                        par::with_threads(1, || ops::axpy(&mut serial, c, &x));
                        par::with_threads(4, || ops::axpy(&mut forked, c, &x));
                        assert_eq!(serial, forked, "backend {}", b.name());
                    });
                }
            }

            /// The all-`(q−1)` worst case: maximum-magnitude coefficients
            /// times maximum-magnitude inputs, enough terms to stress the
            /// partial-fold overflow bounds (each folded product attains
            /// its documented maximum).
            #[test]
            fn worst_case_all_q_minus_one() {
                let q1 = <$F>::from_u64(<$F>::MODULUS - 1);
                let len = 64usize;
                let terms = 257usize;
                let x = vec![q1; len];
                let coeffs = vec![q1; terms];
                let inputs: Vec<&[$F]> = (0..terms).map(|_| x.as_slice()).collect();
                for_each_backend(|b| {
                    let mut fused = vec![q1; len];
                    let mut sweep = vec![q1; len];
                    ops::weighted_sum_into(&mut fused, &coeffs, &inputs);
                    ops::reference::weighted_sum_into(&mut sweep, &coeffs, &inputs);
                    assert_eq!(fused, sweep, "backend {}", b.name());
                    // closed form: q−1 ≡ −1, so
                    // out = −1 + terms·(−1)(−1) = terms − 1
                    assert_eq!(fused[0], <$F>::from_u64(terms as u64 - 1));

                    // dot of all-(q−1) vectors: Σ (−1)(−1) = len
                    let y = vec![q1; len];
                    assert_eq!(ops::dot(&x, &y), <$F>::from_u64(len as u64));
                    assert_eq!(ops::dot(&x, &y), ops::reference::dot(&x, &y));

                    // widened running sum of all-(q−1) uploads
                    let mut wide = ops::wide_zeros::<$F>(len);
                    let rounds = 513usize;
                    for _ in 0..rounds {
                        ops::wide_accumulate::<$F>(&mut wide, &x);
                    }
                    let collapsed = ops::wide_collapse::<$F>(&wide);
                    // Σ (−1) over `rounds` terms = −rounds
                    assert_eq!(collapsed[0], <$F>::from_i64(-(rounds as i64)));
                });
            }

            /// Many max-magnitude terms through the fused kernel stay
            /// exact (the closed form makes wrap-around visible); on the
            /// SIMD path this crosses the lane re-fold cadence hundreds
            /// of times.
            #[test]
            fn many_max_terms_stay_exact() {
                let q1 = <$F>::from_u64(<$F>::MODULUS - 1);
                let x = vec![q1; 8];
                let terms = 1200usize;
                let coeffs = vec![q1; terms];
                let inputs: Vec<&[$F]> = (0..terms).map(|_| x.as_slice()).collect();
                for_each_backend(|b| {
                    let mut out = vec![<$F>::ZERO; 8];
                    ops::weighted_sum_into(&mut out, &coeffs, &inputs);
                    assert_eq!(out[0], <$F>::from_u64(terms as u64), "backend {}", b.name());
                });
            }
        }
    };
}

/// A saturated `u64` accumulator still reduces correctly, and the
/// documented capacity times the worst-case folded-product magnitude
/// provably fits the accumulator — the static overflow bound behind
/// `Fp32::WIDE_CAPACITY`.
#[test]
fn fp32_accumulator_bounds_hold_at_extremes() {
    assert_eq!(
        Fp32::wide_reduce(u64::MAX).residue(),
        u64::MAX % Fp32::MODULUS
    );
    let q1 = Fp32::MODULUS - 1;
    let t = u128::from(q1) * u128::from(q1);
    let max_term = (t >> 32) * 5 + (t & 0xFFFF_FFFF);
    assert!(u128::from(Fp32::WIDE_CAPACITY) * max_term <= u128::from(u64::MAX));
}

/// As above for `Fp61`: a saturated `u128` accumulator reduces
/// correctly, and `WIDE_CAPACITY` unfolded worst-case products
/// (`(q−1)² < 2^122` each) cannot overflow a `u128`.
#[test]
fn fp61_accumulator_bounds_hold_at_extremes() {
    assert_eq!(
        u128::from(Fp61::wide_reduce(u128::MAX).residue()),
        u128::MAX % u128::from(Fp61::MODULUS)
    );
    let q1 = u128::from(Fp61::MODULUS - 1);
    let max_term = q1 * q1;
    assert!(max_term
        .checked_mul(u128::from(Fp61::WIDE_CAPACITY))
        .is_some());
}

kernel_equivalence!(fp32_kernels, fp32, vec32, Fp32);
kernel_equivalence!(fp61_kernels, fp61, vec61, Fp61);

/// Serial and forked execution must agree element-for-element on the
/// fused decode-shaped workload (many coefficients, long vectors), for
/// every thread count × backend combination — one answer no matter how
/// the work is split across cores or lanes. This also exercises the
/// backend-pin propagation into [`par`] workers: the whole matrix runs
/// under scoped `with_backend` overrides that must survive the fork.
fn parallel_matrix_bit_identical<F: Field>(seed: u64) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(seed);
    let len = par::MIN_PAR_LEN + 7;
    let inputs: Vec<Vec<F>> = (0..16).map(|_| ops::random_vector(len, &mut rng)).collect();
    let coeffs: Vec<F> = (0..16).map(|_| F::random(&mut rng)).collect();
    let refs: Vec<&[F]> = inputs.iter().map(Vec::as_slice).collect();

    let mut baseline: Option<Vec<F>> = None;
    for_each_backend(|b| {
        for threads in [1usize, 2, 4, 7] {
            let mut out = vec![F::ZERO; len];
            par::with_threads(threads, || {
                ops::weighted_sum_into(&mut out, &coeffs, &refs);
            });
            match &baseline {
                None => baseline = Some(out),
                Some(base) => {
                    assert_eq!(&out, base, "backend {} threads {threads}", b.name())
                }
            }
        }
    });
}

#[test]
fn parallel_weighted_sum_bit_identical_across_thread_counts_fp32() {
    parallel_matrix_bit_identical::<Fp32>(98);
}

#[test]
fn parallel_weighted_sum_bit_identical_across_thread_counts_fp61() {
    parallel_matrix_bit_identical::<Fp61>(99);
}
