//! Vector kernels over field elements.
//!
//! The protocol layers manipulate large vectors (`d` up to millions of
//! elements), so the hot loops live here as free functions over slices.
//! All functions panic on length mismatch — the callers own shape
//! invariants and a silent truncation would be a correctness bug in a
//! secure-aggregation context.

use crate::Field;
use rand::Rng;

/// `acc[k] += x[k]` for all `k`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_assign<F: Field>(acc: &mut [F], x: &[F]) {
    assert_eq!(acc.len(), x.len(), "vector length mismatch");
    for (a, b) in acc.iter_mut().zip(x) {
        *a += *b;
    }
}

/// `acc[k] -= x[k]` for all `k`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub_assign<F: Field>(acc: &mut [F], x: &[F]) {
    assert_eq!(acc.len(), x.len(), "vector length mismatch");
    for (a, b) in acc.iter_mut().zip(x) {
        *a -= *b;
    }
}

/// `acc[k] += c * x[k]` for all `k` (fused multiply-accumulate).
///
/// This is the inner loop of MDS encoding/decoding.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy<F: Field>(acc: &mut [F], c: F, x: &[F]) {
    assert_eq!(acc.len(), x.len(), "vector length mismatch");
    if c == F::ZERO {
        return;
    }
    for (a, b) in acc.iter_mut().zip(x) {
        *a += c * *b;
    }
}

/// Element-wise sum of two vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add<F: Field>(x: &[F], y: &[F]) -> Vec<F> {
    assert_eq!(x.len(), y.len(), "vector length mismatch");
    x.iter().zip(y).map(|(a, b)| *a + *b).collect()
}

/// Element-wise difference `x - y`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub<F: Field>(x: &[F], y: &[F]) -> Vec<F> {
    assert_eq!(x.len(), y.len(), "vector length mismatch");
    x.iter().zip(y).map(|(a, b)| *a - *b).collect()
}

/// Scale a vector by a constant, in place.
pub fn scale_assign<F: Field>(x: &mut [F], c: F) {
    for a in x.iter_mut() {
        *a *= c;
    }
}

/// Inner product `Σ x[k]·y[k]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot<F: Field>(x: &[F], y: &[F]) -> F {
    assert_eq!(x.len(), y.len(), "vector length mismatch");
    x.iter().zip(y).map(|(a, b)| *a * *b).sum()
}

/// Sum a collection of equal-length vectors into a fresh vector.
///
/// Returns `None` when the iterator is empty.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn sum_vectors<'a, F: Field>(mut vecs: impl Iterator<Item = &'a [F]>) -> Option<Vec<F>> {
    let first = vecs.next()?;
    let mut acc = first.to_vec();
    for v in vecs {
        add_assign(&mut acc, v);
    }
    Some(acc)
}

/// Fill a vector with uniformly random field elements.
pub fn random_vector<F: Field, R: Rng + ?Sized>(len: usize, rng: &mut R) -> Vec<F> {
    (0..len).map(|_| F::random(rng)).collect()
}

/// Batch inversion via Montgomery's trick: inverts `n` elements with one
/// field inversion and `3(n−1)` multiplications.
///
/// Used by the Lagrange decoders, where per-element `inv()` (a full
/// `O(log q)` exponentiation) would dominate the `O(U²)` basis setup.
///
/// Returns `None` if any input is zero (callers treat a zero denominator
/// as a duplicate-point bug, so no partial output is produced).
pub fn batch_invert<F: Field>(xs: &[F]) -> Option<Vec<F>> {
    if xs.is_empty() {
        return Some(Vec::new());
    }
    // prefix products
    let mut prefix = Vec::with_capacity(xs.len());
    let mut acc = F::ONE;
    for &x in xs {
        if x.is_zero() {
            return None;
        }
        acc *= x;
        prefix.push(acc);
    }
    // single inversion of the total product
    let mut inv_acc = prefix.last().copied()?.inv()?;
    let mut out = vec![F::ZERO; xs.len()];
    for k in (0..xs.len()).rev() {
        let before = if k == 0 { F::ONE } else { prefix[k - 1] };
        out[k] = inv_acc * before;
        inv_acc *= xs[k];
    }
    Some(out)
}

/// Evaluate the "vector polynomial" `Σ_k segs[k] · point^k` (Horner form).
///
/// Each `segs[k]` is a vector coefficient; the result has the common
/// segment length. This is exactly one column of the Vandermonde MDS
/// encoding in Eq. (5) of the paper.
///
/// # Panics
///
/// Panics if `segs` is empty or the segments have different lengths.
pub fn horner_eval<F: Field>(segs: &[Vec<F>], point: F) -> Vec<F> {
    assert!(!segs.is_empty(), "no segments to evaluate");
    let len = segs[0].len();
    let mut acc = vec![F::ZERO; len];
    for seg in segs.iter().rev() {
        assert_eq!(seg.len(), len, "segment length mismatch");
        // acc = acc * point + seg
        for (a, s) in acc.iter_mut().zip(seg) {
            *a = *a * point + *s;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fp32, Fp61};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn v32(xs: &[u64]) -> Vec<Fp32> {
        xs.iter().map(|&x| Fp32::from_u64(x)).collect()
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = v32(&[1, 2, 3, 4]);
        let y = v32(&[10, 20, 30, 40]);
        let s = add(&x, &y);
        let back = sub(&s, &y);
        assert_eq!(back, x);
    }

    #[test]
    fn axpy_matches_manual() {
        let mut acc = v32(&[1, 1, 1]);
        let x = v32(&[2, 3, 4]);
        axpy(&mut acc, Fp32::from_u64(5), &x);
        assert_eq!(acc, v32(&[11, 16, 21]));
    }

    #[test]
    fn axpy_zero_coefficient_is_noop() {
        let mut acc = v32(&[7, 8]);
        let before = acc.clone();
        axpy(&mut acc, Fp32::ZERO, &v32(&[100, 200]));
        assert_eq!(acc, before);
    }

    #[test]
    fn dot_small() {
        let x = v32(&[1, 2, 3]);
        let y = v32(&[4, 5, 6]);
        assert_eq!(dot(&x, &y).residue(), 32);
    }

    #[test]
    fn sum_vectors_empty_is_none() {
        let empty: Vec<&[Fp32]> = vec![];
        assert!(sum_vectors::<Fp32>(empty.into_iter()).is_none());
    }

    #[test]
    fn sum_vectors_three() {
        let a = v32(&[1, 2]);
        let b = v32(&[3, 4]);
        let c = v32(&[5, 6]);
        let s = sum_vectors([a.as_slice(), b.as_slice(), c.as_slice()].into_iter()).unwrap();
        assert_eq!(s, v32(&[9, 12]));
    }

    #[test]
    fn horner_eval_linear() {
        // segs = [c0, c1]; eval at point p gives c0 + c1*p.
        let c0 = v32(&[1, 2]);
        let c1 = v32(&[3, 4]);
        let out = horner_eval(&[c0, c1], Fp32::from_u64(10));
        assert_eq!(out, v32(&[31, 42]));
    }

    #[test]
    fn horner_eval_fp61() {
        let c0: Vec<Fp61> = vec![Fp61::from_u64(5)];
        let c1: Vec<Fp61> = vec![Fp61::from_u64(7)];
        let c2: Vec<Fp61> = vec![Fp61::from_u64(11)];
        let out = horner_eval(&[c0, c1, c2], Fp61::from_u64(2));
        // 5 + 7*2 + 11*4 = 63
        assert_eq!(out[0].residue(), 63);
    }

    #[test]
    fn random_vector_is_seed_deterministic() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = random_vector::<Fp32, _>(100, &mut r1);
        let b = random_vector::<Fp32, _>(100, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "vector length mismatch")]
    fn add_assign_length_mismatch_panics() {
        let mut a = v32(&[1]);
        add_assign(&mut a, &v32(&[1, 2]));
    }

    #[test]
    fn batch_invert_matches_individual() {
        let xs = v32(&[2, 3, 5, 7, 11, 4294967290]);
        let got = batch_invert(&xs).unwrap();
        for (x, inv) in xs.iter().zip(&got) {
            assert_eq!(*x * *inv, Fp32::ONE);
        }
    }

    #[test]
    fn batch_invert_rejects_zero() {
        let xs = v32(&[2, 0, 5]);
        assert!(batch_invert(&xs).is_none());
    }

    #[test]
    fn batch_invert_empty_and_singleton() {
        assert_eq!(batch_invert::<Fp32>(&[]).unwrap(), vec![]);
        let one = batch_invert(&v32(&[7])).unwrap();
        assert_eq!(one[0] * Fp32::from_u64(7), Fp32::ONE);
    }
}
