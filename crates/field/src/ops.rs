//! Vector kernels over field elements.
//!
//! The protocol layers manipulate large vectors (`d` up to millions of
//! elements), so the hot loops live here as free functions over slices.
//! All functions panic on length mismatch — the callers own shape
//! invariants and a silent truncation would be a correctness bug in a
//! secure-aggregation context.
//!
//! # Kernel design: delayed reduction + fork-join chunks
//!
//! The multiply-accumulate kernels ([`axpy`], [`weighted_sum_into`],
//! [`horner_eval`], [`dot`], [`sum_vectors`]) do **not** reduce after
//! every operation. They accumulate partially-folded terms in the
//! field's widened accumulator ([`Field::Wide`]: `u64` for `Fp32`,
//! `u128` for `Fp61`) and collapse to a canonical residue **once per
//! output element** — turning `U` modular reductions per element into
//! one. [`Field::WIDE_CAPACITY`] bounds how many terms fit before an
//! intermediate re-fold; the kernels re-fold automatically, so callers
//! may pass any number of terms.
//!
//! Long vectors are processed in cache-sized chunks and, above
//! [`par::MIN_PAR_LEN`], forked across the [`par`] worker pool
//! (`LSA_THREADS`). Every kernel computes each output element
//! independently with a fixed term order, so results are bit-identical
//! across thread counts.
//!
//! The pre-refactor one-reduction-per-op loops survive in
//! [`reference`] as the oracle for equivalence tests and the baseline
//! for the `field_kernels` bench.

use crate::{par, simd, Field};
use rand::Rng;

/// Elements per cache-sized block inside the fused kernels: the widened
/// scratch buffer stays within L1 (8–16 KiB) while amortising the outer
/// per-input-vector loop. This is also the maximum block length handed
/// to [`Field::simd_weighted_block`], so SIMD kernels can size their
/// stack scratch statically.
pub const BLOCK: usize = 1024;

/// `acc[k] += x[k]` for all `k`.
///
/// A single addition per element is already one reduction; the kernel
/// only adds chunked forking for large `d`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_assign<F: Field>(acc: &mut [F], x: &[F]) {
    assert_eq!(acc.len(), x.len(), "vector length mismatch");
    par::par_chunks_mut(acc, |offset, chunk| {
        let len = chunk.len();
        for (a, b) in chunk.iter_mut().zip(&x[offset..offset + len]) {
            *a += *b;
        }
    });
}

/// `acc[k] -= x[k]` for all `k`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub_assign<F: Field>(acc: &mut [F], x: &[F]) {
    assert_eq!(acc.len(), x.len(), "vector length mismatch");
    par::par_chunks_mut(acc, |offset, chunk| {
        let len = chunk.len();
        for (a, b) in chunk.iter_mut().zip(&x[offset..offset + len]) {
            *a -= *b;
        }
    });
}

/// `acc[k] += c * x[k]` for all `k` (multiply-accumulate).
///
/// A *single* axpy already reduces once per element, and LLVM's
/// strength-reduced constant modulo beats the widening tricks for one
/// product — so this stays the plain loop (chunk-forked for large
/// vectors). The lazy-reduction win lives in [`weighted_sum_into`],
/// which fuses *many* axpy sweeps into one widened pass; prefer it
/// whenever more than one term is accumulated.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy<F: Field>(acc: &mut [F], c: F, x: &[F]) {
    assert_eq!(acc.len(), x.len(), "vector length mismatch");
    if c == F::ZERO {
        return;
    }
    par::par_chunks_mut(acc, |offset, chunk| {
        let len = chunk.len();
        for (a, &b) in chunk.iter_mut().zip(&x[offset..offset + len]) {
            *a += c * b;
        }
    });
}

/// Element-wise sum of two vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add<F: Field>(x: &[F], y: &[F]) -> Vec<F> {
    assert_eq!(x.len(), y.len(), "vector length mismatch");
    x.iter().zip(y).map(|(a, b)| *a + *b).collect()
}

/// Element-wise difference `x - y`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub<F: Field>(x: &[F], y: &[F]) -> Vec<F> {
    assert_eq!(x.len(), y.len(), "vector length mismatch");
    x.iter().zip(y).map(|(a, b)| *a - *b).collect()
}

/// Scale a vector by a constant, in place.
pub fn scale_assign<F: Field>(x: &mut [F], c: F) {
    par::par_chunks_mut(x, |_, chunk| {
        for a in chunk.iter_mut() {
            *a *= c;
        }
    });
}

/// Inner product `Σ x[k]·y[k]`.
///
/// Accumulates partially-folded products in the widened domain and
/// reduces once (re-folding every [`Field::WIDE_CAPACITY`] terms).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot<F: Field>(x: &[F], y: &[F]) -> F {
    assert_eq!(x.len(), y.len(), "vector length mismatch");
    // one dispatch per bulk call, never per element
    let backend = simd::backend();
    if backend != simd::Backend::Scalar {
        if let Some(r) = F::simd_dot(backend, x, y) {
            return r;
        }
    }
    let mut acc = F::ZERO.to_wide();
    let mut terms: u64 = 0;
    for (&a, &b) in x.iter().zip(y) {
        if terms == F::WIDE_CAPACITY {
            acc = F::wide_reduce(acc).to_wide();
            terms = 1;
        }
        acc = F::wide_mul_add(acc, a, b);
        terms += 1;
    }
    F::wide_reduce(acc)
}

/// The fused multi-axpy at the heart of MDS decode and encode:
/// `out[k] += Σ_i coeffs[i] · inputs[i][k]`, accumulated in the widened
/// domain and reduced **once per element**.
///
/// Zero coefficients are skipped; unit coefficients take the cheaper
/// add-only path (this makes [`sum_vectors`] the same kernel). Chunked
/// over `out` and forked across the worker pool for large vectors;
/// bit-identical across thread counts (fixed term order per element).
///
/// # Panics
///
/// Panics if `coeffs` and `inputs` differ in length, or any input's
/// length differs from `out`'s.
pub fn weighted_sum_into<F: Field>(out: &mut [F], coeffs: &[F], inputs: &[&[F]]) {
    assert_eq!(coeffs.len(), inputs.len(), "one coefficient per input");
    for v in inputs {
        assert_eq!(v.len(), out.len(), "vector length mismatch");
    }
    if inputs.is_empty() {
        return;
    }
    // one dispatch per bulk call: the chosen backend is captured here
    // and threaded through every forked chunk and cache block
    let backend = simd::backend();
    par::par_chunks_mut(out, |offset, range| {
        // grown on the first scalar-path block; stays empty when the
        // SIMD kernel (with its own stack scratch) handles every block
        let mut wide: Vec<F::Wide> = Vec::new();
        let mut start = 0;
        while start < range.len() {
            let end = (start + BLOCK).min(range.len());
            let block = &mut range[start..end];
            if backend != simd::Backend::Scalar
                && F::simd_weighted_block(backend, block, coeffs, inputs, offset + start)
            {
                start = end;
                continue;
            }
            wide.clear();
            wide.extend(block.iter().map(|x| x.to_wide()));
            // terms already absorbed per accumulator (the seed residue
            // counts as one)
            let mut terms: u64 = 1;
            for (&c, v) in coeffs.iter().zip(inputs) {
                if c == F::ZERO {
                    continue;
                }
                if terms == F::WIDE_CAPACITY {
                    for w in wide.iter_mut() {
                        *w = F::wide_reduce(*w).to_wide();
                    }
                    terms = 1;
                }
                let src = &v[offset + start..offset + end];
                if c == F::ONE {
                    for (w, &x) in wide.iter_mut().zip(src) {
                        *w = F::wide_add(*w, x);
                    }
                } else {
                    for (w, &x) in wide.iter_mut().zip(src) {
                        *w = F::wide_mul_add(*w, c, x);
                    }
                }
                terms += 1;
            }
            for (o, &w) in block.iter_mut().zip(wide.iter()) {
                *o = F::wide_reduce(w);
            }
            start = end;
        }
    });
}

/// Sum a collection of equal-length vectors into a fresh vector.
///
/// Returns `None` when the iterator is empty. All tail vectors are
/// folded through the widened accumulator in one chunked pass — one
/// reduction per element, however many vectors are summed.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn sum_vectors<'a, F: Field>(mut vecs: impl Iterator<Item = &'a [F]>) -> Option<Vec<F>> {
    let first = vecs.next()?;
    let mut acc = first.to_vec();
    let rest: Vec<&[F]> = vecs.collect();
    if !rest.is_empty() {
        let ones = vec![F::ONE; rest.len()];
        weighted_sum_into(&mut acc, &ones, &rest);
    }
    Some(acc)
}

/// Fill a vector with uniformly random field elements.
pub fn random_vector<F: Field, R: Rng + ?Sized>(len: usize, rng: &mut R) -> Vec<F> {
    (0..len).map(|_| F::random(rng)).collect()
}

/// Batch inversion via Montgomery's trick: inverts `n` elements with one
/// field inversion and `3(n−1)` multiplications.
///
/// Used by the Lagrange decoders, where per-element `inv()` (a full
/// `O(log q)` exponentiation) would dominate the `O(U²)` basis setup.
///
/// Returns `None` if any input is zero (callers treat a zero denominator
/// as a duplicate-point bug, so no partial output is produced).
pub fn batch_invert<F: Field>(xs: &[F]) -> Option<Vec<F>> {
    if xs.is_empty() {
        return Some(Vec::new());
    }
    // prefix products
    let mut prefix = Vec::with_capacity(xs.len());
    let mut acc = F::ONE;
    for &x in xs {
        if x.is_zero() {
            return None;
        }
        acc *= x;
        prefix.push(acc);
    }
    // single inversion of the total product
    let mut inv_acc = prefix.last().copied()?.inv()?;
    let mut out = vec![F::ZERO; xs.len()];
    for k in (0..xs.len()).rev() {
        let before = if k == 0 { F::ONE } else { prefix[k - 1] };
        out[k] = inv_acc * before;
        inv_acc *= xs[k];
    }
    Some(out)
}

/// Evaluate the "vector polynomial" `Σ_k segs[k] · point^k`.
///
/// Each `segs[k]` is a vector coefficient; the result has the common
/// segment length. This is exactly one column of the Vandermonde MDS
/// encoding in Eq. (5) of the paper.
///
/// Instead of a Horner sweep (one reduced multiply-add per segment per
/// element), the powers `point^k` are computed once (`U` scalar
/// multiplies) and the segments folded through the fused
/// [`weighted_sum_into`] — one reduction per output element. Field
/// arithmetic is exact, so the result is identical to the Horner form.
///
/// # Panics
///
/// Panics if `segs` is empty or the segments have different lengths.
pub fn horner_eval<F: Field>(segs: &[Vec<F>], point: F) -> Vec<F> {
    assert!(!segs.is_empty(), "no segments to evaluate");
    let len = segs[0].len();
    for seg in segs {
        assert_eq!(seg.len(), len, "segment length mismatch");
    }
    let mut coeffs = Vec::with_capacity(segs.len());
    let mut p = F::ONE;
    for _ in 0..segs.len() {
        coeffs.push(p);
        p *= point;
    }
    let inputs: Vec<&[F]> = segs.iter().map(Vec::as_slice).collect();
    let mut out = vec![F::ZERO; len];
    weighted_sum_into(&mut out, &coeffs, &inputs);
    out
}

// ---------------------------------------------------------------------
// Widened-vector helpers (running sums that stay unreduced across calls)
// ---------------------------------------------------------------------

/// Lift a residue vector into the widened accumulator domain (the shape
/// of `ServerRound`'s running masked-model sum).
pub fn wide_from<F: Field>(x: &[F]) -> Vec<F::Wide> {
    x.iter().map(|v| v.to_wide()).collect()
}

/// A fresh all-zero widened accumulator vector.
pub fn wide_zeros<F: Field>(len: usize) -> Vec<F::Wide> {
    vec![F::ZERO.to_wide(); len]
}

/// `acc[k] += x[k]` in the widened domain — no reduction at all. The
/// caller tracks the term count against [`Field::WIDE_CAPACITY`] and
/// calls [`wide_normalize`] before it overflows.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn wide_accumulate<F: Field>(acc: &mut [F::Wide], x: &[F]) {
    assert_eq!(acc.len(), x.len(), "vector length mismatch");
    par::par_chunks_mut(acc, |offset, chunk| {
        let len = chunk.len();
        for (a, &b) in chunk.iter_mut().zip(&x[offset..offset + len]) {
            *a = F::wide_add(*a, b);
        }
    });
}

/// Re-fold every accumulator to a canonical residue in place, resetting
/// the term count to one.
pub fn wide_normalize<F: Field>(acc: &mut [F::Wide]) {
    par::par_chunks_mut(acc, |_, chunk| {
        for a in chunk.iter_mut() {
            *a = F::wide_reduce(*a).to_wide();
        }
    });
}

/// Collapse a widened accumulator vector to canonical residues (the one
/// full reduction per element).
pub fn wide_collapse<F: Field>(acc: &[F::Wide]) -> Vec<F> {
    acc.iter().map(|&w| F::wide_reduce(w)).collect()
}

// ---------------------------------------------------------------------
// Scalar reference kernels
// ---------------------------------------------------------------------

/// The pre-refactor one-reduction-per-operation loops, kept as the
/// oracle for the lazy kernels: property tests assert element-for-element
/// equality against these, and the `field_kernels` bench uses them as
/// the baseline the delayed-reduction kernels must beat.
pub mod reference {
    use crate::Field;

    /// Scalar `acc[k] += c·x[k]` with a full reduction per element.
    pub fn axpy<F: Field>(acc: &mut [F], c: F, x: &[F]) {
        assert_eq!(acc.len(), x.len(), "vector length mismatch");
        if c == F::ZERO {
            return;
        }
        for (a, b) in acc.iter_mut().zip(x) {
            *a += c * *b;
        }
    }

    /// Scalar inner product, reduced per term.
    pub fn dot<F: Field>(x: &[F], y: &[F]) -> F {
        assert_eq!(x.len(), y.len(), "vector length mismatch");
        x.iter().zip(y).map(|(a, b)| *a * *b).sum()
    }

    /// Scalar multi-axpy: one reduced axpy sweep per input.
    pub fn weighted_sum_into<F: Field>(out: &mut [F], coeffs: &[F], inputs: &[&[F]]) {
        assert_eq!(coeffs.len(), inputs.len(), "one coefficient per input");
        for (&c, v) in coeffs.iter().zip(inputs) {
            axpy(out, c, v);
        }
    }

    /// Scalar vector sum: one reduced add sweep per vector.
    pub fn sum_vectors<'a, F: Field>(mut vecs: impl Iterator<Item = &'a [F]>) -> Option<Vec<F>> {
        let first = vecs.next()?;
        let mut acc = first.to_vec();
        for v in vecs {
            assert_eq!(acc.len(), v.len(), "vector length mismatch");
            for (a, b) in acc.iter_mut().zip(v) {
                *a += *b;
            }
        }
        Some(acc)
    }

    /// Horner-form vector polynomial evaluation (one reduced
    /// multiply-add per segment per element).
    pub fn horner_eval<F: Field>(segs: &[Vec<F>], point: F) -> Vec<F> {
        assert!(!segs.is_empty(), "no segments to evaluate");
        let len = segs[0].len();
        let mut acc = vec![F::ZERO; len];
        for seg in segs.iter().rev() {
            assert_eq!(seg.len(), len, "segment length mismatch");
            for (a, s) in acc.iter_mut().zip(seg) {
                *a = *a * point + *s;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fp32, Fp61};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn v32(xs: &[u64]) -> Vec<Fp32> {
        xs.iter().map(|&x| Fp32::from_u64(x)).collect()
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = v32(&[1, 2, 3, 4]);
        let y = v32(&[10, 20, 30, 40]);
        let s = add(&x, &y);
        let back = sub(&s, &y);
        assert_eq!(back, x);
    }

    #[test]
    fn axpy_matches_manual() {
        let mut acc = v32(&[1, 1, 1]);
        let x = v32(&[2, 3, 4]);
        axpy(&mut acc, Fp32::from_u64(5), &x);
        assert_eq!(acc, v32(&[11, 16, 21]));
    }

    #[test]
    fn axpy_zero_coefficient_is_noop() {
        let mut acc = v32(&[7, 8]);
        let before = acc.clone();
        axpy(&mut acc, Fp32::ZERO, &v32(&[100, 200]));
        assert_eq!(acc, before);
    }

    #[test]
    fn dot_small() {
        let x = v32(&[1, 2, 3]);
        let y = v32(&[4, 5, 6]);
        assert_eq!(dot(&x, &y).residue(), 32);
    }

    #[test]
    fn sum_vectors_empty_is_none() {
        let empty: Vec<&[Fp32]> = vec![];
        assert!(sum_vectors::<Fp32>(empty.into_iter()).is_none());
    }

    #[test]
    fn sum_vectors_three() {
        let a = v32(&[1, 2]);
        let b = v32(&[3, 4]);
        let c = v32(&[5, 6]);
        let s = sum_vectors([a.as_slice(), b.as_slice(), c.as_slice()].into_iter()).unwrap();
        assert_eq!(s, v32(&[9, 12]));
    }

    #[test]
    fn weighted_sum_matches_axpy_sweeps() {
        let mut rng = StdRng::seed_from_u64(11);
        let inputs: Vec<Vec<Fp32>> = (0..5).map(|_| random_vector(40, &mut rng)).collect();
        let coeffs: Vec<Fp32> = (0..5).map(|_| Fp32::random(&mut rng)).collect();
        let refs: Vec<&[Fp32]> = inputs.iter().map(Vec::as_slice).collect();
        let mut fused = random_vector::<Fp32, _>(40, &mut rng);
        let mut sweep = fused.clone();
        weighted_sum_into(&mut fused, &coeffs, &refs);
        reference::weighted_sum_into(&mut sweep, &coeffs, &refs);
        assert_eq!(fused, sweep);
    }

    #[test]
    fn weighted_sum_refolds_past_capacity() {
        // More terms than a tiny capacity would allow is exercised for
        // real in the kernel-equivalence suite; here, pin the worst-case
        // magnitudes: q−1 coefficients times q−1 inputs, many times.
        let terms = 64usize;
        let x = vec![Fp61::from_u64(Fp61::MODULUS - 1); 8];
        let coeffs = vec![Fp61::from_u64(Fp61::MODULUS - 1); terms];
        let inputs: Vec<&[Fp61]> = (0..terms).map(|_| x.as_slice()).collect();
        let mut out = vec![Fp61::ZERO; 8];
        let mut expect = vec![Fp61::ZERO; 8];
        weighted_sum_into(&mut out, &coeffs, &inputs);
        reference::weighted_sum_into(&mut expect, &coeffs, &inputs);
        assert_eq!(out, expect);
    }

    #[test]
    fn horner_eval_linear() {
        // segs = [c0, c1]; eval at point p gives c0 + c1*p.
        let c0 = v32(&[1, 2]);
        let c1 = v32(&[3, 4]);
        let out = horner_eval(&[c0, c1], Fp32::from_u64(10));
        assert_eq!(out, v32(&[31, 42]));
    }

    #[test]
    fn horner_eval_fp61() {
        let c0: Vec<Fp61> = vec![Fp61::from_u64(5)];
        let c1: Vec<Fp61> = vec![Fp61::from_u64(7)];
        let c2: Vec<Fp61> = vec![Fp61::from_u64(11)];
        let out = horner_eval(&[c0, c1, c2], Fp61::from_u64(2));
        // 5 + 7*2 + 11*4 = 63
        assert_eq!(out[0].residue(), 63);
    }

    #[test]
    fn horner_eval_at_zero_returns_first_segment() {
        let c0 = v32(&[9, 8]);
        let c1 = v32(&[7, 6]);
        let out = horner_eval(&[c0.clone(), c1], Fp32::ZERO);
        assert_eq!(out, c0);
    }

    #[test]
    fn wide_running_sum_matches_eager_adds() {
        let mut rng = StdRng::seed_from_u64(12);
        let vecs: Vec<Vec<Fp32>> = (0..9).map(|_| random_vector(33, &mut rng)).collect();
        let mut wide = wide_zeros::<Fp32>(33);
        let mut eager = vec![Fp32::ZERO; 33];
        for v in &vecs {
            wide_accumulate(&mut wide, v);
            add_assign(&mut eager, v);
        }
        wide_normalize::<Fp32>(&mut wide);
        assert_eq!(wide_collapse::<Fp32>(&wide), eager);
    }

    #[test]
    fn random_vector_is_seed_deterministic() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = random_vector::<Fp32, _>(100, &mut r1);
        let b = random_vector::<Fp32, _>(100, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "vector length mismatch")]
    fn add_assign_length_mismatch_panics() {
        let mut a = v32(&[1]);
        add_assign(&mut a, &v32(&[1, 2]));
    }

    #[test]
    fn batch_invert_matches_individual() {
        let xs = v32(&[2, 3, 5, 7, 11, 4294967290]);
        let got = batch_invert(&xs).unwrap();
        for (x, inv) in xs.iter().zip(&got) {
            assert_eq!(*x * *inv, Fp32::ONE);
        }
    }

    #[test]
    fn batch_invert_rejects_zero() {
        let xs = v32(&[2, 0, 5]);
        assert!(batch_invert(&xs).is_none());
    }

    #[test]
    fn batch_invert_empty_and_singleton() {
        assert_eq!(batch_invert::<Fp32>(&[]).unwrap(), vec![]);
        let one = batch_invert(&v32(&[7])).unwrap();
        assert_eq!(one[0] * Fp32::from_u64(7), Fp32::ONE);
    }
}
