//! Runtime SIMD backend selection for the bulk field kernels and the
//! ChaCha20 PRG.
//!
//! The delayed-reduction kernels in [`crate::ops`] and the multi-block
//! keystream path in `lsa_crypto` each have two implementations: the
//! portable scalar loop (autovectorization-friendly, the oracle) and a
//! hand-written SIMD kernel over stable `core::arch` intrinsics. Which
//! one runs is decided **once per bulk call** — never per element — by
//! [`backend`], which resolves, in order:
//!
//! 1. a scoped [`with_backend`] override on the current thread (tests
//!    and benches; propagated into [`crate::par`] workers so a forced
//!    backend survives the fork-join pool);
//! 2. the `LSA_SIMD` environment variable, read once per process:
//!    `auto` (default) picks the best backend the CPU supports,
//!    `scalar` forces the portable path, a feature name (`avx2`)
//!    requests that backend — silently degrading to [`Backend::Scalar`]
//!    when the host lacks the feature (the chosen backend is surfaced
//!    in every telemetry/bench JSON record, so a degraded knob is
//!    visible rather than a silent misconfiguration);
//! 3. CPU feature detection (`is_x86_feature_detected!`) on x86_64;
//!    every other architecture runs the portable path.
//!
//! Every SIMD kernel is required to be **bit-identical** to its scalar
//! oracle on all inputs — the backends only trade instruction count,
//! never results. `crates/field/tests/kernel_equivalence.rs` pins this
//! for every kernel on every compiled-in backend.

use std::cell::Cell;
use std::sync::OnceLock;

/// A SIMD instruction-set backend for the bulk kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Portable per-lane loops (the oracle; also what LLVM
    /// autovectorizes for the baseline target features).
    Scalar,
    /// 4-lane `u64` AVX2 kernels (x86_64 only).
    Avx2,
}

impl Backend {
    /// Stable lower-case name, as accepted by `LSA_SIMD` and emitted in
    /// telemetry/bench JSON records.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }
}

/// The best backend this CPU supports, ignoring the knob and overrides.
pub fn detected() -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
    }
    Backend::Scalar
}

/// All backends usable on this host, scalar first — the axis benches
/// and equivalence tests sweep.
pub fn available() -> Vec<Backend> {
    let mut out = vec![Backend::Scalar];
    if detected() != Backend::Scalar {
        out.push(detected());
    }
    out
}

fn env_backend() -> Backend {
    static GLOBAL: OnceLock<Backend> = OnceLock::new();
    *GLOBAL.get_or_init(|| {
        let requested = std::env::var("LSA_SIMD").ok();
        match requested.as_deref().map(str::trim) {
            None | Some("auto") | Some("") => detected(),
            Some("scalar") | Some("off") | Some("0") => Backend::Scalar,
            Some("avx2") => {
                if detected() == Backend::Avx2 {
                    Backend::Avx2
                } else {
                    // requested feature missing: degrade loudly-enough —
                    // the chosen backend lands in every JSON record
                    Backend::Scalar
                }
            }
            // unknown value: conservative portable path (visible in
            // telemetry as "scalar" next to the knob the user set)
            Some(_) => Backend::Scalar,
        }
    })
}

thread_local! {
    /// Scoped override installed by [`with_backend`] (and mirrored into
    /// [`crate::par`] workers for the duration of a forked call).
    static OVERRIDE: Cell<Option<Backend>> = const { Cell::new(None) };
}

/// The backend bulk kernels will use on this thread: the
/// [`with_backend`] override if one is active, else the `LSA_SIMD`
/// resolution. Call it **once per bulk call** and thread the value
/// through inner loops — never re-dispatch per element.
pub fn backend() -> Backend {
    OVERRIDE.with(Cell::get).unwrap_or_else(env_backend)
}

/// Run `f` with the backend pinned on the current thread (restored on
/// exit, even across panics). [`crate::par`] propagates the pin into
/// its workers, so a kernel forked across the pool still honours it.
///
/// Pinning a backend the host cannot run degrades to
/// [`Backend::Scalar`], mirroring the `LSA_SIMD` knob.
pub fn with_backend<R>(backend: Backend, f: impl FnOnce() -> R) -> R {
    let effective = if backend == Backend::Scalar || backend == detected() {
        backend
    } else {
        Backend::Scalar
    };
    struct Restore(Option<Backend>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(effective))));
    f()
}

/// The current thread's scoped override, if any — used by
/// [`crate::par`] to mirror the pin into worker threads.
pub(crate) fn current_override() -> Option<Backend> {
    OVERRIDE.with(Cell::get)
}

/// Install an override captured from a forking thread (worker-side half
/// of the propagation; cleared when the worker's scope ends).
pub(crate) fn set_override(backend: Option<Backend>) {
    OVERRIDE.with(|o| o.set(backend));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_backend_overrides_and_restores() {
        let outer = backend();
        with_backend(Backend::Scalar, || {
            assert_eq!(backend(), Backend::Scalar);
        });
        assert_eq!(backend(), outer);
    }

    #[test]
    fn unsupported_pin_degrades_to_scalar() {
        // pinning the detected backend is the identity; pinning one the
        // host lacks must fall back instead of trapping later
        for b in [Backend::Scalar, Backend::Avx2] {
            with_backend(b, || {
                let eff = backend();
                assert!(eff == b || eff == Backend::Scalar);
                if b == detected() {
                    assert_eq!(eff, b);
                }
            });
        }
    }

    #[test]
    fn available_lists_scalar_first() {
        let all = available();
        assert_eq!(all[0], Backend::Scalar);
        assert!(all.len() <= 2);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Avx2.name(), "avx2");
    }
}
