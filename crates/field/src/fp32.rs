//! `GF(2^32 − 5)` — the field used by the LightSecAgg paper
//! (`q = 4294967291`, the largest prime below `2^32`; Appendix F.5).

use crate::Field;
use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use rand::Rng;

/// The modulus `q = 2^32 − 5`.
pub const P32: u64 = 4_294_967_291;

/// An element of `GF(2^32 − 5)` stored as its canonical residue.
///
/// Products are computed in `u64`, so no intermediate overflow is possible.
///
/// # Example
///
/// ```
/// use lsa_field::{Field, Fp32};
/// let x = Fp32::from_u64(Fp32::MODULUS - 1); // −1
/// assert_eq!(x + Fp32::ONE, Fp32::ZERO);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fp32(u32);

impl Fp32 {
    /// Construct from a raw residue that is already `< q`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `value >= q`.
    #[inline]
    pub fn from_canonical(value: u32) -> Self {
        debug_assert!((value as u64) < P32);
        Self(value)
    }
}

impl Field for Fp32 {
    const MODULUS: u64 = P32;
    const ZERO: Self = Self(0);
    const ONE: Self = Self(1);
    const BITS: u32 = 32;

    type Wide = u64;
    /// Each partially-folded product is `< 6·2^32` (see
    /// [`Field::wide_mul_add`]), so `⌊(2^64−1)/(6·2^32)⌋ > 2^29` terms
    /// fit in a `u64`.
    const WIDE_CAPACITY: u64 = 1 << 29;

    #[inline]
    fn to_wide(self) -> u64 {
        self.0 as u64
    }

    #[inline]
    fn wide_add(acc: u64, x: Self) -> u64 {
        acc + x.0 as u64
    }

    #[inline]
    fn wide_mul_add(acc: u64, c: Self, x: Self) -> u64 {
        // 2^32 ≡ 5 (mod q): one fold brings the u64 product under
        // 5·(2^32−1) + 2^32 < 6·2^32, with no division anywhere.
        let t = c.0 as u64 * x.0 as u64;
        acc + (t >> 32) * 5 + (t & 0xFFFF_FFFF)
    }

    #[inline]
    fn wide_reduce(acc: u64) -> Self {
        // Two folds bring any u64 under 2^32 + 40; one conditional
        // subtraction finishes.
        let v = (acc >> 32) * 5 + (acc & 0xFFFF_FFFF); // < 5·2^32 + 2^32
        let mut w = (v >> 32) * 5 + (v & 0xFFFF_FFFF); // < 2^32 + 40
        if w >= P32 {
            w -= P32;
        }
        Self(w as u32)
    }

    #[inline]
    fn from_u64(value: u64) -> Self {
        Self((value % P32) as u32)
    }

    #[inline]
    fn residue(self) -> u64 {
        self.0 as u64
    }

    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(self.pow(P32 - 2))
        }
    }

    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Rejection sampling over u32: only 5 values out of 2^32 rejected.
        loop {
            let v = rng.gen::<u32>();
            if (v as u64) < P32 {
                return Self(v);
            }
        }
    }
}

impl Add for Fp32 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        let s = self.0 as u64 + rhs.0 as u64;
        Self(if s >= P32 { (s - P32) as u32 } else { s as u32 })
    }
}

impl Sub for Fp32 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let (d, borrow) = self.0.overflowing_sub(rhs.0);
        Self(if borrow {
            (d as u64).wrapping_add(P32) as u32
        } else {
            d
        })
    }
}

impl Mul for Fp32 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self(((self.0 as u64 * rhs.0 as u64) % P32) as u32)
    }
}

impl Neg for Fp32 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Self((P32 - self.0 as u64) as u32)
        }
    }
}

impl AddAssign for Fp32 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Fp32 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Fp32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for Fp32 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl Product for Fp32 {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |a, b| a * b)
    }
}

impl fmt::Debug for Fp32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp32({})", self.0)
    }
}

impl fmt::Display for Fp32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Fp32 {
    fn from(value: u32) -> Self {
        Self::from_u64(value as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulus_is_prime_by_trial_division() {
        // One-off sanity check of the constant (sqrt(q) ≈ 65536).
        let q = P32;
        assert!(q % 2 == 1);
        let mut d = 3u64;
        while d * d <= q {
            assert_ne!(q % d, 0, "divisor {d}");
            d += 2;
        }
    }

    #[test]
    fn add_wraps() {
        let a = Fp32::from_u64(P32 - 1);
        assert_eq!((a + Fp32::ONE).residue(), 0);
        assert_eq!((a + a).residue(), P32 - 2);
    }

    #[test]
    fn sub_wraps() {
        let a = Fp32::ZERO;
        assert_eq!((a - Fp32::ONE).residue(), P32 - 1);
    }

    #[test]
    fn neg_zero_is_zero() {
        assert_eq!(-Fp32::ZERO, Fp32::ZERO);
    }

    #[test]
    fn inv_of_zero_is_none() {
        assert!(Fp32::ZERO.inv().is_none());
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let x = Fp32::from_u64(12345);
        let mut acc = Fp32::ONE;
        for e in 0..20u64 {
            assert_eq!(x.pow(e), acc);
            acc *= x;
        }
    }
}
