//! `GF(2^32 − 5)` — the field used by the LightSecAgg paper
//! (`q = 4294967291`, the largest prime below `2^32`; Appendix F.5).

use crate::Field;
use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use rand::Rng;

/// The modulus `q = 2^32 − 5`.
pub const P32: u64 = 4_294_967_291;

/// An element of `GF(2^32 − 5)` stored as its canonical residue.
///
/// Products are computed in `u64`, so no intermediate overflow is possible.
///
/// # Example
///
/// ```
/// use lsa_field::{Field, Fp32};
/// let x = Fp32::from_u64(Fp32::MODULUS - 1); // −1
/// assert_eq!(x + Fp32::ONE, Fp32::ZERO);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Fp32(u32);

impl Fp32 {
    /// Construct from a raw residue that is already `< q`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `value >= q`.
    #[inline]
    pub fn from_canonical(value: u32) -> Self {
        debug_assert!((value as u64) < P32);
        Self(value)
    }
}

impl Field for Fp32 {
    const MODULUS: u64 = P32;
    const ZERO: Self = Self(0);
    const ONE: Self = Self(1);
    const BITS: u32 = 32;

    type Wide = u64;
    /// Each partially-folded product is `< 6·2^32` (see
    /// [`Field::wide_mul_add`]), so `⌊(2^64−1)/(6·2^32)⌋ > 2^29` terms
    /// fit in a `u64`.
    const WIDE_CAPACITY: u64 = 1 << 29;

    #[inline]
    fn to_wide(self) -> u64 {
        self.0 as u64
    }

    #[inline]
    fn wide_add(acc: u64, x: Self) -> u64 {
        acc + x.0 as u64
    }

    #[inline]
    fn wide_mul_add(acc: u64, c: Self, x: Self) -> u64 {
        // 2^32 ≡ 5 (mod q): one fold brings the u64 product under
        // 5·(2^32−1) + 2^32 < 6·2^32, with no division anywhere.
        let t = c.0 as u64 * x.0 as u64;
        acc + (t >> 32) * 5 + (t & 0xFFFF_FFFF)
    }

    #[inline]
    fn wide_reduce(acc: u64) -> Self {
        // Two folds bring any u64 under 2^32 + 40; one conditional
        // subtraction finishes.
        let v = (acc >> 32) * 5 + (acc & 0xFFFF_FFFF); // < 5·2^32 + 2^32
        let mut w = (v >> 32) * 5 + (v & 0xFFFF_FFFF); // < 2^32 + 40
        if w >= P32 {
            w -= P32;
        }
        Self(w as u32)
    }

    #[inline]
    fn from_u64(value: u64) -> Self {
        Self((value % P32) as u32)
    }

    #[inline]
    fn residue(self) -> u64 {
        self.0 as u64
    }

    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(self.pow(P32 - 2))
        }
    }

    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Rejection sampling over u32: only 5 values out of 2^32 rejected.
        loop {
            let v = rng.gen::<u32>();
            if (v as u64) < P32 {
                return Self(v);
            }
        }
    }

    fn simd_weighted_block(
        backend: crate::simd::Backend,
        block: &mut [Self],
        coeffs: &[Self],
        inputs: &[&[Self]],
        offset: usize,
    ) -> bool {
        #[cfg(target_arch = "x86_64")]
        if backend == crate::simd::Backend::Avx2 {
            // SAFETY: `Backend::Avx2` is only ever produced by
            // `crate::simd` after `is_x86_feature_detected!("avx2")`.
            unsafe { avx2::weighted_block(block, coeffs, inputs, offset) };
            return true;
        }
        let _ = (backend, block, coeffs, inputs, offset);
        false
    }

    fn simd_dot(backend: crate::simd::Backend, x: &[Self], y: &[Self]) -> Option<Self> {
        #[cfg(target_arch = "x86_64")]
        if backend == crate::simd::Backend::Avx2 {
            // SAFETY: as in `simd_weighted_block`.
            return Some(unsafe { avx2::dot(x, y) });
        }
        let _ = (backend, x, y);
        None
    }
}

/// AVX2 kernels: four `u64` accumulator lanes per instruction, using the
/// **same** partial-fold arithmetic (`acc += (t >> 32)·5 + (t & 2³²−1)`)
/// and the same [`Field::WIDE_CAPACITY`] re-fold cadence as the scalar
/// `wide_*` primitives — so the accumulator contents, not just the
/// reduced outputs, match the scalar path exactly.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{Fp32, P32};
    use crate::ops::BLOCK;
    use crate::Field;
    use core::arch::x86_64::*;

    /// One partial fold: `(t >> 32)·5 + (t & 2³²−1)`, lanewise.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fold(t: __m256i, mask32: __m256i) -> __m256i {
        let hi = _mm256_srli_epi64::<32>(t);
        let hi5 = _mm256_add_epi64(hi, _mm256_slli_epi64::<2>(hi));
        _mm256_add_epi64(hi5, _mm256_and_si256(t, mask32))
    }

    /// Canonical lanewise reduction: two folds, then one conditional
    /// subtraction (values stay far below `2^63`, so the signed compare
    /// is exact). Lanes keep their `u64` width.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce_vec(acc: __m256i, mask32: __m256i, p: __m256i) -> __m256i {
        let v = fold(acc, mask32); // < 6·2^32
        let w = fold(v, mask32); // < 2^32 + 25
        let lt = _mm256_cmpgt_epi64(p, w);
        let sub = _mm256_andnot_si256(lt, p); // p where w >= p
        _mm256_sub_epi64(w, sub)
    }

    /// The fused weighted-sum block kernel
    /// (see [`Field::simd_weighted_block`] for the contract).
    ///
    /// Strip-major: each 16-element strip keeps its accumulators in four
    /// registers across *all* terms, so the only per-term memory traffic
    /// is the input load — the scalar path's widened scratch (and its
    /// per-term load/store of the accumulator) disappears entirely.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn weighted_block(
        block: &mut [Fp32],
        coeffs: &[Fp32],
        inputs: &[&[Fp32]],
        offset: usize,
    ) {
        let n = block.len();
        debug_assert!(n <= BLOCK);
        let mask32 = _mm256_set1_epi64x(0xFFFF_FFFF);
        let p = _mm256_set1_epi64x(P32 as i64);
        let idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
        let mut k = 0;
        while k + 16 <= n {
            let base = block.as_ptr().add(k);
            let mut a0 = _mm256_cvtepu32_epi64(_mm_loadu_si128(base as *const __m128i));
            let mut a1 = _mm256_cvtepu32_epi64(_mm_loadu_si128(base.add(4) as *const __m128i));
            let mut a2 = _mm256_cvtepu32_epi64(_mm_loadu_si128(base.add(8) as *const __m128i));
            let mut a3 = _mm256_cvtepu32_epi64(_mm_loadu_si128(base.add(12) as *const __m128i));
            // seed residue counts as one absorbed term
            let mut terms: u64 = 1;
            for (&c, v) in coeffs.iter().zip(inputs) {
                if c == Fp32::ZERO {
                    continue;
                }
                if terms == Fp32::WIDE_CAPACITY {
                    a0 = reduce_vec(a0, mask32, p);
                    a1 = reduce_vec(a1, mask32, p);
                    a2 = reduce_vec(a2, mask32, p);
                    a3 = reduce_vec(a3, mask32, p);
                    terms = 1;
                }
                let src = v.as_ptr().add(offset + k);
                let x0 = _mm256_cvtepu32_epi64(_mm_loadu_si128(src as *const __m128i));
                let x1 = _mm256_cvtepu32_epi64(_mm_loadu_si128(src.add(4) as *const __m128i));
                let x2 = _mm256_cvtepu32_epi64(_mm_loadu_si128(src.add(8) as *const __m128i));
                let x3 = _mm256_cvtepu32_epi64(_mm_loadu_si128(src.add(12) as *const __m128i));
                if c == Fp32::ONE {
                    a0 = _mm256_add_epi64(a0, x0);
                    a1 = _mm256_add_epi64(a1, x1);
                    a2 = _mm256_add_epi64(a2, x2);
                    a3 = _mm256_add_epi64(a3, x3);
                } else {
                    // lanes hold zero-extended u32s, so mul_epu32's
                    // low-32 × low-32 semantics give the exact product
                    let cs = _mm256_set1_epi64x(c.0 as i64);
                    a0 = _mm256_add_epi64(a0, fold(_mm256_mul_epu32(x0, cs), mask32));
                    a1 = _mm256_add_epi64(a1, fold(_mm256_mul_epu32(x1, cs), mask32));
                    a2 = _mm256_add_epi64(a2, fold(_mm256_mul_epu32(x2, cs), mask32));
                    a3 = _mm256_add_epi64(a3, fold(_mm256_mul_epu32(x3, cs), mask32));
                }
                terms += 1;
            }
            // reduce and narrow all four quarters, then two 8×u32 stores
            let w0 = _mm256_permutevar8x32_epi32(reduce_vec(a0, mask32, p), idx);
            let w1 = _mm256_permutevar8x32_epi32(reduce_vec(a1, mask32, p), idx);
            let w2 = _mm256_permutevar8x32_epi32(reduce_vec(a2, mask32, p), idx);
            let w3 = _mm256_permutevar8x32_epi32(reduce_vec(a3, mask32, p), idx);
            let lo = _mm256_inserti128_si256::<1>(w0, _mm256_castsi256_si128(w1));
            let hi = _mm256_inserti128_si256::<1>(w2, _mm256_castsi256_si128(w3));
            _mm256_storeu_si256(block.as_mut_ptr().add(k) as *mut __m256i, lo);
            _mm256_storeu_si256(block.as_mut_ptr().add(k + 8) as *mut __m256i, hi);
            k += 16;
        }
        // scalar tail (< 16 elements) on the `Wide` oracle path
        while k < n {
            let mut acc = block[k].to_wide();
            let mut terms: u64 = 1;
            for (&c, v) in coeffs.iter().zip(inputs) {
                if c == Fp32::ZERO {
                    continue;
                }
                if terms == Fp32::WIDE_CAPACITY {
                    acc = Fp32::wide_reduce(acc).to_wide();
                    terms = 1;
                }
                let x = v[offset + k];
                acc = if c == Fp32::ONE {
                    Fp32::wide_add(acc, x)
                } else {
                    Fp32::wide_mul_add(acc, c, x)
                };
                terms += 1;
            }
            block[k] = Fp32::wide_reduce(acc);
            k += 1;
        }
    }

    /// Inner product: four parallel lane accumulators with the scalar
    /// re-fold cadence per lane, collapsed exactly at the end.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(x: &[Fp32], y: &[Fp32]) -> Fp32 {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let mask32 = _mm256_set1_epi64x(0xFFFF_FFFF);
        let mut acc = _mm256_setzero_si256();
        let mut terms: u64 = 0;
        let mut k = 0;
        while k + 4 <= n {
            if terms == Fp32::WIDE_CAPACITY {
                // lanewise canonical re-fold, mirroring the scalar kernel
                let mut lanes = [0u64; 4];
                _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
                for l in lanes.iter_mut() {
                    *l = Fp32::wide_reduce(*l).to_wide();
                }
                acc = _mm256_loadu_si256(lanes.as_ptr() as *const __m256i);
                terms = 1;
            }
            let xs = _mm256_cvtepu32_epi64(_mm_loadu_si128(x.as_ptr().add(k) as *const __m128i));
            let ys = _mm256_cvtepu32_epi64(_mm_loadu_si128(y.as_ptr().add(k) as *const __m128i));
            let t = _mm256_mul_epu32(xs, ys);
            acc = _mm256_add_epi64(acc, fold(t, mask32));
            terms += 1;
            k += 4;
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        // canonical per-lane residues sum to < 4·2^32; tail terms are
        // each < 6·2^32, so the u64 accumulator has ample headroom
        let mut wide: u64 = lanes.iter().map(|&l| Fp32::wide_reduce(l).residue()).sum();
        while k < n {
            wide = Fp32::wide_mul_add(wide, x[k], y[k]);
            k += 1;
        }
        Fp32::wide_reduce(wide)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::simd::{detected, Backend};

        fn worst() -> Fp32 {
            Fp32(P32 as u32 - 1)
        }

        #[test]
        fn weighted_block_worst_case_matches_scalar() {
            if detected() != Backend::Avx2 {
                return;
            }
            // all-(q−1) coefficients and inputs with a non-multiple-of-4
            // block length, so both the lane loop and the tail run
            let terms = 24;
            let len = 19;
            let coeffs = vec![worst(); terms];
            let owned: Vec<Vec<Fp32>> = vec![vec![worst(); len]; terms];
            let inputs: Vec<&[Fp32]> = owned.iter().map(Vec::as_slice).collect();
            let mut simd_out = vec![worst(); len];
            let mut scalar_out = simd_out.clone();
            // SAFETY: detection checked above.
            unsafe { weighted_block(&mut simd_out, &coeffs, &inputs, 0) };
            crate::ops::reference::weighted_sum_into(&mut scalar_out, &coeffs, &inputs);
            assert_eq!(simd_out, scalar_out);
        }

        #[test]
        fn dot_worst_case_matches_scalar() {
            if detected() != Backend::Avx2 {
                return;
            }
            // 4·k + 3 so a 3-element scalar tail follows the lane loop
            let len = 4 * 25 + 3;
            let x = vec![worst(); len];
            let y = vec![worst(); len];
            // SAFETY: detection checked above.
            let got = unsafe { dot(&x, &y) };
            assert_eq!(got, crate::ops::reference::dot(&x, &y));
        }
    }
}

impl Add for Fp32 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        let s = self.0 as u64 + rhs.0 as u64;
        Self(if s >= P32 { (s - P32) as u32 } else { s as u32 })
    }
}

impl Sub for Fp32 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let (d, borrow) = self.0.overflowing_sub(rhs.0);
        Self(if borrow {
            (d as u64).wrapping_add(P32) as u32
        } else {
            d
        })
    }
}

impl Mul for Fp32 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self(((self.0 as u64 * rhs.0 as u64) % P32) as u32)
    }
}

impl Neg for Fp32 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Self((P32 - self.0 as u64) as u32)
        }
    }
}

impl AddAssign for Fp32 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Fp32 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Fp32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for Fp32 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl Product for Fp32 {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |a, b| a * b)
    }
}

impl fmt::Debug for Fp32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp32({})", self.0)
    }
}

impl fmt::Display for Fp32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Fp32 {
    fn from(value: u32) -> Self {
        Self::from_u64(value as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulus_is_prime_by_trial_division() {
        // One-off sanity check of the constant (sqrt(q) ≈ 65536).
        let q = P32;
        assert!(q % 2 == 1);
        let mut d = 3u64;
        while d * d <= q {
            assert_ne!(q % d, 0, "divisor {d}");
            d += 2;
        }
    }

    #[test]
    fn add_wraps() {
        let a = Fp32::from_u64(P32 - 1);
        assert_eq!((a + Fp32::ONE).residue(), 0);
        assert_eq!((a + a).residue(), P32 - 2);
    }

    #[test]
    fn sub_wraps() {
        let a = Fp32::ZERO;
        assert_eq!((a - Fp32::ONE).residue(), P32 - 1);
    }

    #[test]
    fn neg_zero_is_zero() {
        assert_eq!(-Fp32::ZERO, Fp32::ZERO);
    }

    #[test]
    fn inv_of_zero_is_none() {
        assert!(Fp32::ZERO.inv().is_none());
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let x = Fp32::from_u64(12345);
        let mut acc = Fp32::ONE;
        for e in 0..20u64 {
            assert_eq!(x.pow(e), acc);
            acc *= x;
        }
    }
}
