//! `GF(2^61 − 1)` — a Mersenne-prime field with fast reduction.
//!
//! Used to validate that the coding and protocol layers are field-generic,
//! and as a larger field when aggregating many quantized updates would risk
//! wrap-around in `GF(2^32 − 5)`.

use crate::Field;
use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use rand::Rng;

/// The modulus `q = 2^61 − 1` (a Mersenne prime).
pub const P61: u64 = (1u64 << 61) - 1;

/// An element of `GF(2^61 − 1)` stored as its canonical residue.
///
/// Multiplication uses `u128` intermediates with Mersenne folding
/// (`hi*2^61 + lo ≡ hi + lo (mod 2^61 − 1)`), which is branch-light and
/// noticeably faster than a generic `%`.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fp61(u64);

#[inline]
fn reduce128(x: u128) -> u64 {
    // Fold twice: after one fold the value is < 2^62, after the second
    // it is < 2^61 + 1, so a single conditional subtraction finishes.
    let lo = (x as u64) & P61;
    let hi = (x >> 61) as u64;
    let mut s = lo + hi;
    if s >= P61 {
        s -= P61;
    }
    s
}

impl Fp61 {
    /// Construct from a raw residue that is already `< q`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `value >= q`.
    #[inline]
    pub fn from_canonical(value: u64) -> Self {
        debug_assert!(value < P61);
        Self(value)
    }
}

impl Field for Fp61 {
    const MODULUS: u64 = P61;
    const ZERO: Self = Self(0);
    const ONE: Self = Self(1);
    const BITS: u32 = 61;

    type Wide = u128;
    /// Products are accumulated **unfolded** (see
    /// [`Field::wide_mul_add`]): each term is `< 2^122`, so 63 of them
    /// fit in a `u128` (`63·2^122 < 2^128`). The bulk kernels re-fold
    /// automatically past this bound.
    const WIDE_CAPACITY: u64 = 63;

    #[inline]
    fn to_wide(self) -> u128 {
        self.0 as u128
    }

    #[inline]
    fn wide_add(acc: u128, x: Self) -> u128 {
        acc + x.0 as u128
    }

    #[inline]
    fn wide_mul_add(acc: u128, c: Self, x: Self) -> u128 {
        // No per-term folding at all — the 122-bit product rides in the
        // u128 accumulator as-is (the kernel re-folds every
        // `WIDE_CAPACITY` terms), so the inner loop is one widening
        // multiply and one add.
        acc + c.0 as u128 * x.0 as u128
    }

    #[inline]
    fn wide_reduce(acc: u128) -> Self {
        // acc < 2^128 ⇒ first fold < 2^67 + 2^61 ⇒ second fold fits u64
        // and sits below 2^61 + 64; one conditional subtraction finishes.
        let s = (acc >> 61) + (acc & P61 as u128);
        let mut t = ((s >> 61) + (s & P61 as u128)) as u64;
        if t >= P61 {
            t -= P61;
        }
        Self(t)
    }

    #[inline]
    fn from_u64(value: u64) -> Self {
        // value < 2^64 = 8·(2^61) so two folds suffice.
        let mut v = (value & P61) + (value >> 61);
        if v >= P61 {
            v -= P61;
        }
        Self(v)
    }

    #[inline]
    fn residue(self) -> u64 {
        self.0
    }

    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(self.pow(P61 - 2))
        }
    }

    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let v = rng.gen::<u64>() >> 3; // 61 random bits
            if v < P61 {
                return Self(v);
            }
        }
    }
}

impl Add for Fp61 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        let mut s = self.0 + rhs.0; // < 2^62, no overflow
        if s >= P61 {
            s -= P61;
        }
        Self(s)
    }
}

impl Sub for Fp61 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let (d, borrow) = self.0.overflowing_sub(rhs.0);
        Self(if borrow { d.wrapping_add(P61) } else { d })
    }
}

impl Mul for Fp61 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self(reduce128(self.0 as u128 * rhs.0 as u128))
    }
}

impl Neg for Fp61 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Self(P61 - self.0)
        }
    }
}

impl AddAssign for Fp61 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Fp61 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Fp61 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for Fp61 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl Product for Fp61 {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |a, b| a * b)
    }
}

impl fmt::Debug for Fp61 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp61({})", self.0)
    }
}

impl fmt::Display for Fp61 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Fp61 {
    fn from(value: u64) -> Self {
        Self::from_u64(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce128_handles_extremes() {
        assert_eq!(reduce128(0), 0);
        assert_eq!(reduce128(P61 as u128), 0);
        assert_eq!(reduce128((P61 as u128) * (P61 as u128)), 0);
        assert_eq!(reduce128(u128::from(u64::MAX)), u64::MAX % P61);
    }

    #[test]
    fn square_of_modulus_is_zero() {
        let q = Fp61::from_u64(P61);
        assert_eq!(q, Fp61::ZERO);
        assert_eq!(q * q, Fp61::ZERO);
    }

    #[test]
    fn minus_one_squared() {
        let m1 = -Fp61::ONE;
        assert_eq!(m1 * m1, Fp61::ONE);
    }

    #[test]
    fn from_u64_reduces_max() {
        let x = Fp61::from_u64(u64::MAX);
        assert!(x.residue() < P61);
        assert_eq!(x.residue(), u64::MAX % P61);
    }

    #[test]
    fn fermat_inverse() {
        let x = Fp61::from_u64(987654321);
        assert_eq!(x * x.inv().unwrap(), Fp61::ONE);
    }
}
