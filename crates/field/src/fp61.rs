//! `GF(2^61 − 1)` — a Mersenne-prime field with fast reduction.
//!
//! Used to validate that the coding and protocol layers are field-generic,
//! and as a larger field when aggregating many quantized updates would risk
//! wrap-around in `GF(2^32 − 5)`.

use crate::Field;
use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use rand::Rng;

/// The modulus `q = 2^61 − 1` (a Mersenne prime).
pub const P61: u64 = (1u64 << 61) - 1;

/// An element of `GF(2^61 − 1)` stored as its canonical residue.
///
/// Multiplication uses `u128` intermediates with Mersenne folding
/// (`hi*2^61 + lo ≡ hi + lo (mod 2^61 − 1)`), which is branch-light and
/// noticeably faster than a generic `%`.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Fp61(u64);

#[inline]
fn reduce128(x: u128) -> u64 {
    // Fold twice: after one fold the value is < 2^62, after the second
    // it is < 2^61 + 1, so a single conditional subtraction finishes.
    let lo = (x as u64) & P61;
    let hi = (x >> 61) as u64;
    let mut s = lo + hi;
    if s >= P61 {
        s -= P61;
    }
    s
}

impl Fp61 {
    /// Construct from a raw residue that is already `< q`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `value >= q`.
    #[inline]
    pub fn from_canonical(value: u64) -> Self {
        debug_assert!(value < P61);
        Self(value)
    }
}

impl Field for Fp61 {
    const MODULUS: u64 = P61;
    const ZERO: Self = Self(0);
    const ONE: Self = Self(1);
    const BITS: u32 = 61;

    type Wide = u128;
    /// Products are accumulated **unfolded** (see
    /// [`Field::wide_mul_add`]): each term is `< 2^122`, so 63 of them
    /// fit in a `u128` (`63·2^122 < 2^128`). The bulk kernels re-fold
    /// automatically past this bound.
    const WIDE_CAPACITY: u64 = 63;

    #[inline]
    fn to_wide(self) -> u128 {
        self.0 as u128
    }

    #[inline]
    fn wide_add(acc: u128, x: Self) -> u128 {
        acc + x.0 as u128
    }

    #[inline]
    fn wide_mul_add(acc: u128, c: Self, x: Self) -> u128 {
        // No per-term folding at all — the 122-bit product rides in the
        // u128 accumulator as-is (the kernel re-folds every
        // `WIDE_CAPACITY` terms), so the inner loop is one widening
        // multiply and one add.
        acc + c.0 as u128 * x.0 as u128
    }

    #[inline]
    fn wide_reduce(acc: u128) -> Self {
        // acc < 2^128 ⇒ first fold < 2^67 + 2^61 ⇒ second fold fits u64
        // and sits below 2^61 + 64; one conditional subtraction finishes.
        let s = (acc >> 61) + (acc & P61 as u128);
        let mut t = ((s >> 61) + (s & P61 as u128)) as u64;
        if t >= P61 {
            t -= P61;
        }
        Self(t)
    }

    #[inline]
    fn from_u64(value: u64) -> Self {
        // value < 2^64 = 8·(2^61) so two folds suffice.
        let mut v = (value & P61) + (value >> 61);
        if v >= P61 {
            v -= P61;
        }
        Self(v)
    }

    #[inline]
    fn residue(self) -> u64 {
        self.0
    }

    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(self.pow(P61 - 2))
        }
    }

    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let v = rng.gen::<u64>() >> 3; // 61 random bits
            if v < P61 {
                return Self(v);
            }
        }
    }

    fn simd_weighted_block(
        backend: crate::simd::Backend,
        block: &mut [Self],
        coeffs: &[Self],
        inputs: &[&[Self]],
        offset: usize,
    ) -> bool {
        #[cfg(target_arch = "x86_64")]
        if backend == crate::simd::Backend::Avx2 {
            // SAFETY: `Backend::Avx2` is only ever produced by
            // `crate::simd` after `is_x86_feature_detected!("avx2")`.
            unsafe { avx2::weighted_block(block, coeffs, inputs, offset) };
            return true;
        }
        let _ = (backend, block, coeffs, inputs, offset);
        false
    }

    fn simd_dot(backend: crate::simd::Backend, x: &[Self], y: &[Self]) -> Option<Self> {
        #[cfg(target_arch = "x86_64")]
        if backend == crate::simd::Backend::Avx2 {
            // SAFETY: as in `simd_weighted_block`.
            return Some(unsafe { avx2::dot(x, y) });
        }
        let _ = (backend, x, y);
        None
    }
}

/// AVX2 kernels over four `u64` lanes.
///
/// The scalar path accumulates **unfolded 122-bit products** in a
/// `u128` — a representation with no 4-lane AVX2 analogue. The SIMD
/// path therefore uses its own exact-mod-`q` representation (the
/// [`Field::simd_weighted_block`] contract demands bit-identical
/// *outputs*, not matching accumulators): each `c·x` product is built
/// from 32-bit limbs and folded to `< 2^61 + 4` immediately, and a
/// `u64` lane absorbs [`LANE_CAPACITY`] such terms between re-folds.
///
/// With `c = c₀ + c₁·2^32`, `x = x₀ + x₁·2^32` (`c₀,x₀ < 2^32`;
/// `c₁,x₁ < 2^29`):
///
/// * `p₀₀ = c₀·x₀ < 2^64` folds as `(p₀₀ >> 61) + (p₀₀ & q)`;
/// * `pₘ = c₀·x₁ + c₁·x₀ < 2^62` carries a `2^32` factor, and since
///   `v·2^32 ≡ (v mod 2^29)·2^32 + (v >> 29) (mod q)` it folds as
///   `((pₘ & (2^29−1)) << 32) + (pₘ >> 29) < 2^61 + 2^33`;
/// * `p₁₁ = c₁·x₁ < 2^58` carries `2^64 ≡ 2^3`, i.e. `p₁₁ << 3 < 2^61`.
///
/// Their sum is `< 3·2^61 + 2^34 < 2^63`, and one more fold brings the
/// finished term below `2^61 + 4`.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{Fp61, P61};
    use crate::ops::BLOCK;
    use crate::Field;
    use core::arch::x86_64::*;

    /// Terms of size `< 2^61 + 8` a `u64` lane absorbs before a re-fold
    /// (`7·(2^61 + 8) < 2^64`; an eighth term could overflow).
    const LANE_CAPACITY: u64 = 7;

    // Pin the bound proofs the kernels rely on.
    #[allow(clippy::assertions_on_constants)]
    const _: () = {
        // product-term fold output and re-folded lane both fit the
        // "< 2^61 + 8" budget LANE_CAPACITY assumes
        assert!((LANE_CAPACITY as u128) * ((1u128 << 61) + 8) < (1u128 << 64));
        // the three folded limb contributions sum below 2^63, so the
        // final per-term fold's shift sees no truncated bits
        assert!((1u128 << 61) + 8 + (1u128 << 61) + (1u128 << 33) + (1u128 << 61) < (1u128 << 63));
    };

    /// One Mersenne fold `(t >> 61) + (t & q)`, lanewise.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fold(t: __m256i, p: __m256i) -> __m256i {
        _mm256_add_epi64(_mm256_srli_epi64::<61>(t), _mm256_and_si256(t, p))
    }

    /// Lanewise `c·x mod`-folded term, `< 2^61 + 4`, via the limb
    /// decomposition described on the module.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_term(c: __m256i, c_hi: __m256i, x: __m256i, p: __m256i) -> __m256i {
        let x_hi = _mm256_srli_epi64::<32>(x);
        let p00 = _mm256_mul_epu32(c, x); // c0·x0, exact
        let pm = _mm256_add_epi64(_mm256_mul_epu32(c, x_hi), _mm256_mul_epu32(c_hi, x));
        let p11 = _mm256_mul_epu32(c_hi, x_hi);
        let mask29 = _mm256_set1_epi64x((1 << 29) - 1);
        let f00 = fold(p00, p);
        let fm = _mm256_add_epi64(
            _mm256_slli_epi64::<32>(_mm256_and_si256(pm, mask29)),
            _mm256_srli_epi64::<29>(pm),
        );
        let f11 = _mm256_slli_epi64::<3>(p11);
        let term = _mm256_add_epi64(f00, _mm256_add_epi64(fm, f11));
        fold(term, p)
    }

    /// Re-fold every lane of a scratch back under `2^61 + 8` (each
    /// folded lane thereafter counts as one absorbed term).
    #[inline]
    fn refold(wide: &mut [u64]) {
        for w in wide.iter_mut() {
            *w = (*w >> 61) + (*w & P61);
        }
    }

    /// Collapse a lane accumulator to its canonical residue.
    #[inline]
    fn lane_reduce(acc: u64) -> u64 {
        let s = (acc >> 61) + (acc & P61);
        let mut t = (s >> 61) + (s & P61);
        if t >= P61 {
            t -= P61;
        }
        t
    }

    /// Canonical lanewise reduction: two folds, then one conditional
    /// subtraction (values stay far below `2^63`, so the signed compare
    /// is exact).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce_vec(acc: __m256i, p: __m256i) -> __m256i {
        let v = fold(acc, p); // < 2^61 + 8
        let w = fold(v, p); // <= 2^61
        let lt = _mm256_cmpgt_epi64(p, w);
        let sub = _mm256_andnot_si256(lt, p); // p where w >= p
        _mm256_sub_epi64(w, sub)
    }

    /// Scalar replica of [`mul_term`] for loop tails — same limb
    /// decomposition, same `< 2^61 + 4` output bound.
    #[inline]
    fn scalar_term(c: u64, x: u64) -> u64 {
        let (c0, c1) = (c & 0xFFFF_FFFF, c >> 32);
        let (x0, x1) = (x & 0xFFFF_FFFF, x >> 32);
        let p00 = c0 * x0;
        let pm = c0 * x1 + c1 * x0;
        let p11 = c1 * x1;
        let f00 = (p00 >> 61) + (p00 & P61);
        let fm = ((pm & ((1 << 29) - 1)) << 32) + (pm >> 29);
        let f11 = p11 << 3;
        let term = f00 + fm + f11;
        (term >> 61) + (term & P61)
    }

    /// The fused weighted-sum block kernel
    /// (see [`Field::simd_weighted_block`] for the contract).
    ///
    /// Strip-major: each 8-element strip keeps its accumulators in two
    /// registers across *all* terms, so the only per-term memory traffic
    /// is the input load — the scalar path's widened scratch (and its
    /// per-term load/store of the accumulator) disappears entirely.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn weighted_block(
        block: &mut [Fp61],
        coeffs: &[Fp61],
        inputs: &[&[Fp61]],
        offset: usize,
    ) {
        let n = block.len();
        debug_assert!(n <= BLOCK);
        let p = _mm256_set1_epi64x(P61 as i64);
        let mut k = 0;
        while k + 8 <= n {
            let base = block.as_ptr().add(k);
            let mut a0 = _mm256_loadu_si256(base as *const __m256i);
            let mut a1 = _mm256_loadu_si256(base.add(4) as *const __m256i);
            // the seed residue counts as one absorbed term
            let mut terms: u64 = 1;
            for (&c, v) in coeffs.iter().zip(inputs) {
                if c == Fp61::ZERO {
                    continue;
                }
                if terms == LANE_CAPACITY {
                    a0 = fold(a0, p);
                    a1 = fold(a1, p);
                    terms = 1;
                }
                let src = v.as_ptr().add(offset + k);
                let x0 = _mm256_loadu_si256(src as *const __m256i);
                let x1 = _mm256_loadu_si256(src.add(4) as *const __m256i);
                if c == Fp61::ONE {
                    a0 = _mm256_add_epi64(a0, x0);
                    a1 = _mm256_add_epi64(a1, x1);
                } else {
                    let cs = _mm256_set1_epi64x(c.0 as i64);
                    let cs_hi = _mm256_srli_epi64::<32>(cs);
                    a0 = _mm256_add_epi64(a0, mul_term(cs, cs_hi, x0, p));
                    a1 = _mm256_add_epi64(a1, mul_term(cs, cs_hi, x1, p));
                }
                terms += 1;
            }
            _mm256_storeu_si256(block.as_mut_ptr().add(k) as *mut __m256i, reduce_vec(a0, p));
            _mm256_storeu_si256(
                block.as_mut_ptr().add(k + 4) as *mut __m256i,
                reduce_vec(a1, p),
            );
            k += 8;
        }
        // scalar tail (< 8 elements) on the same lane representation
        while k < n {
            let mut acc = block[k].0;
            let mut terms: u64 = 1;
            for (&c, v) in coeffs.iter().zip(inputs) {
                if c == Fp61::ZERO {
                    continue;
                }
                if terms == LANE_CAPACITY {
                    acc = (acc >> 61) + (acc & P61);
                    terms = 1;
                }
                let x = v[offset + k].0;
                acc += if c == Fp61::ONE {
                    x
                } else {
                    scalar_term(c.0, x)
                };
                terms += 1;
            }
            block[k] = Fp61(lane_reduce(acc));
            k += 1;
        }
    }

    /// Inner product: four parallel lane accumulators on the
    /// [`LANE_CAPACITY`] cadence, collapsed exactly at the end.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(x: &[Fp61], y: &[Fp61]) -> Fp61 {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let p = _mm256_set1_epi64x(P61 as i64);
        let mut acc = _mm256_setzero_si256();
        let mut terms: u64 = 0;
        let mut k = 0;
        while k + 4 <= n {
            if terms == LANE_CAPACITY {
                let mut lanes = [0u64; 4];
                _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
                refold(&mut lanes);
                acc = _mm256_loadu_si256(lanes.as_ptr() as *const __m256i);
                terms = 1;
            }
            let xs = _mm256_loadu_si256(x.as_ptr().add(k) as *const __m256i);
            let xs_hi = _mm256_srli_epi64::<32>(xs);
            let ys = _mm256_loadu_si256(y.as_ptr().add(k) as *const __m256i);
            acc = _mm256_add_epi64(acc, mul_term(xs, xs_hi, ys, p));
            terms += 1;
            k += 4;
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        // canonical lane residues sum below 2^63; tail products ride the
        // scalar unfolded-u128 path, which has capacity to spare
        let mut wide: u128 = lanes.iter().map(|&l| lane_reduce(l) as u128).sum();
        while k < n {
            wide = Fp61::wide_mul_add(wide, x[k], y[k]);
            k += 1;
        }
        Fp61::wide_reduce(wide)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::simd::{detected, Backend};

        fn worst() -> Fp61 {
            Fp61(P61 - 1)
        }

        #[test]
        fn scalar_term_is_exact_mod_q() {
            for (c, x) in [
                (P61 - 1, P61 - 1),
                (P61 - 1, 1),
                (0xFFFF_FFFF, P61 - 1),
                (1 << 60, 1 << 60),
                (123_456_789_012_345, 987_654_321_098_765),
            ] {
                let term = scalar_term(c, x);
                assert!(term < (1 << 61) + 8, "fold bound violated");
                assert_eq!(
                    Fp61::from_u64(lane_reduce(term)),
                    Fp61(c % P61) * Fp61(x % P61)
                );
            }
        }

        #[test]
        fn weighted_block_worst_case_matches_scalar() {
            if detected() != Backend::Avx2 {
                return;
            }
            // 2·LANE_CAPACITY + 3 all-(q−1) terms: crosses the re-fold
            // cadence twice, with a non-multiple-of-4 block length
            let terms = (2 * LANE_CAPACITY + 3) as usize;
            let len = 19;
            let coeffs = vec![worst(); terms];
            let owned: Vec<Vec<Fp61>> = vec![vec![worst(); len]; terms];
            let inputs: Vec<&[Fp61]> = owned.iter().map(Vec::as_slice).collect();
            let mut simd_out = vec![worst(); len];
            let mut scalar_out = simd_out.clone();
            // SAFETY: detection checked above.
            unsafe { weighted_block(&mut simd_out, &coeffs, &inputs, 0) };
            crate::ops::reference::weighted_sum_into(&mut scalar_out, &coeffs, &inputs);
            assert_eq!(simd_out, scalar_out);
        }

        #[test]
        fn dot_worst_case_matches_scalar() {
            if detected() != Backend::Avx2 {
                return;
            }
            // long enough to re-fold, with a 3-element scalar tail
            let len = 4 * (LANE_CAPACITY as usize) * 3 + 3;
            let x = vec![worst(); len];
            let y = vec![worst(); len];
            // SAFETY: detection checked above.
            let got = unsafe { dot(&x, &y) };
            assert_eq!(got, crate::ops::reference::dot(&x, &y));
        }
    }
}

impl Add for Fp61 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        let mut s = self.0 + rhs.0; // < 2^62, no overflow
        if s >= P61 {
            s -= P61;
        }
        Self(s)
    }
}

impl Sub for Fp61 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let (d, borrow) = self.0.overflowing_sub(rhs.0);
        Self(if borrow { d.wrapping_add(P61) } else { d })
    }
}

impl Mul for Fp61 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self(reduce128(self.0 as u128 * rhs.0 as u128))
    }
}

impl Neg for Fp61 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Self(P61 - self.0)
        }
    }
}

impl AddAssign for Fp61 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Fp61 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Fp61 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for Fp61 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl Product for Fp61 {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |a, b| a * b)
    }
}

impl fmt::Debug for Fp61 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp61({})", self.0)
    }
}

impl fmt::Display for Fp61 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Fp61 {
    fn from(value: u64) -> Self {
        Self::from_u64(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce128_handles_extremes() {
        assert_eq!(reduce128(0), 0);
        assert_eq!(reduce128(P61 as u128), 0);
        assert_eq!(reduce128((P61 as u128) * (P61 as u128)), 0);
        assert_eq!(reduce128(u128::from(u64::MAX)), u64::MAX % P61);
    }

    #[test]
    fn square_of_modulus_is_zero() {
        let q = Fp61::from_u64(P61);
        assert_eq!(q, Fp61::ZERO);
        assert_eq!(q * q, Fp61::ZERO);
    }

    #[test]
    fn minus_one_squared() {
        let m1 = -Fp61::ONE;
        assert_eq!(m1 * m1, Fp61::ONE);
    }

    #[test]
    fn from_u64_reduces_max() {
        let x = Fp61::from_u64(u64::MAX);
        assert!(x.residue() < P61);
        assert_eq!(x.residue(), u64::MAX % P61);
    }

    #[test]
    fn fermat_inverse() {
        let x = Fp61::from_u64(987654321);
        assert_eq!(x * x.inv().unwrap(), Fp61::ONE);
    }
}
