//! Prime-field arithmetic for the LightSecAgg reproduction.
//!
//! All secure-aggregation operations in the paper are carried out over a
//! finite field `F_q`. The reference implementation uses `q = 2^32 − 5`
//! (the largest 32-bit prime; see Appendix F.5 of the paper), which is
//! provided here as [`Fp32`]. A second, larger field [`Fp61`]
//! (`q = 2^61 − 1`, a Mersenne prime) is provided both to test genericity of
//! the coding layer and to offer head-room against wrap-around when
//! aggregating many quantized updates.
//!
//! The [`Field`] trait abstracts over both so the MDS coding, secret-sharing
//! and protocol layers are field-agnostic.
//!
//! # Example
//!
//! ```
//! use lsa_field::{Field, Fp32};
//!
//! let a = Fp32::from_u64(7);
//! let b = Fp32::from_u64(11);
//! assert_eq!((a * b).residue(), 77);
//! // Every non-zero element is invertible.
//! let inv = a.inv().expect("non-zero");
//! assert_eq!(a * inv, Fp32::ONE);
//! ```

mod fp32;
mod fp61;
pub mod ops;
pub mod par;
pub mod simd;

pub use fp32::Fp32;
pub use fp61::Fp61;

use core::fmt::{Debug, Display};
use core::hash::Hash;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use rand::Rng;

/// A prime field element.
///
/// Implementors are `Copy` value types storing a canonical residue in
/// `[0, MODULUS)`. All arithmetic is constant modular arithmetic; `inv`
/// uses Fermat's little theorem (`a^(q-2)`), so it is `O(log q)`
/// multiplications.
///
/// The trait is sealed in spirit (only the two in-crate fields implement
/// it); downstream code should be generic over `F: Field`.
pub trait Field:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + Eq
    + PartialEq
    + Hash
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + Product
    + 'static
{
    /// The field modulus `q`.
    const MODULUS: u64;

    /// Additive identity.
    const ZERO: Self;

    /// Multiplicative identity.
    const ONE: Self;

    /// Number of bits needed to store a canonical residue.
    const BITS: u32;

    /// Widened unreduced accumulator for delayed-reduction kernels
    /// (`u64` for [`Fp32`], `u128` for [`Fp61`]).
    ///
    /// The bulk kernels in [`ops`] accumulate many `c·x` terms into a
    /// `Wide` and reduce **once per output element** instead of once per
    /// operation. Each term is only *partially* folded (cheap shifts and
    /// adds, no division), so up to [`Field::WIDE_CAPACITY`] terms fit
    /// before [`Field::wide_reduce`] (or a re-fold via
    /// `wide_reduce(..).to_wide()`) must run.
    type Wide: Copy + Clone + Debug + Default + Send + Sync + 'static;

    /// Maximum number of terms — partially-folded products from
    /// [`Field::wide_mul_add`] or residues from [`Field::wide_add`] —
    /// that one `Wide` accumulator can absorb without overflow.
    ///
    /// The bound is conservative: it assumes every term attains the
    /// product-fold worst case.
    const WIDE_CAPACITY: u64;

    /// Lift a canonical residue into the widened accumulator domain.
    fn to_wide(self) -> Self::Wide;

    /// `acc + self` without reduction (one term against
    /// [`Field::WIDE_CAPACITY`]).
    fn wide_add(acc: Self::Wide, x: Self) -> Self::Wide;

    /// `acc + c·x` with the double-width product partially folded so
    /// that [`Field::WIDE_CAPACITY`] such terms fit without overflow —
    /// the inner step of every fused multi-axpy kernel.
    fn wide_mul_add(acc: Self::Wide, c: Self, x: Self) -> Self::Wide;

    /// Collapse an accumulator to its canonical residue (the one full
    /// reduction per output element).
    fn wide_reduce(acc: Self::Wide) -> Self;

    /// SIMD implementation of the fused weighted-sum kernel over one
    /// cache block:
    /// `block[k] = reduce(block[k] + Σ_i coeffs[i] · inputs[i][offset + k])`,
    /// with the same zero/one-coefficient fast paths as the scalar path
    /// in [`ops::weighted_sum_into`]. `block.len()` is at most
    /// [`ops::BLOCK`] and each `inputs[i]` extends at least
    /// `offset + block.len()` elements.
    ///
    /// Returns `false` when this field has no kernel for `backend` (the
    /// caller then runs the portable scalar path). Implementations are
    /// free to pick their own internal accumulator representation and
    /// re-fold cadence, but the output residues must be **bit-identical**
    /// to the scalar path on every input — field arithmetic is exact,
    /// so any representation that is exact mod `q` and reduces to the
    /// canonical residue qualifies.
    fn simd_weighted_block(
        backend: simd::Backend,
        block: &mut [Self],
        coeffs: &[Self],
        inputs: &[&[Self]],
        offset: usize,
    ) -> bool {
        let _ = (backend, block, coeffs, inputs, offset);
        false
    }

    /// SIMD inner product `Σ x[k]·y[k]`, or `None` when this field has
    /// no kernel for `backend`. Same bit-identical contract as
    /// [`Field::simd_weighted_block`].
    fn simd_dot(backend: simd::Backend, x: &[Self], y: &[Self]) -> Option<Self> {
        let _ = (backend, x, y);
        None
    }

    /// Construct an element from an unsigned integer, reducing mod `q`.
    fn from_u64(value: u64) -> Self;

    /// Construct an element from a signed integer: negative values map to
    /// `q - |value| mod q`, i.e. the standard embedding of small signed
    /// integers used by the two's-complement mapping `φ` of the paper
    /// (Appendix F.3.2).
    fn from_i64(value: i64) -> Self {
        if value >= 0 {
            Self::from_u64(value as u64)
        } else {
            let mag = Self::from_u64(value.unsigned_abs());
            -mag
        }
    }

    /// The canonical residue in `[0, q)`.
    fn residue(self) -> u64;

    /// Multiplicative inverse, or `None` for zero.
    fn inv(self) -> Option<Self>;

    /// Modular exponentiation by squaring.
    fn pow(self, mut exp: u64) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while exp != 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base *= base;
            exp >>= 1;
        }
        acc
    }

    /// Uniformly random field element (rejection sampling, unbiased).
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;

    /// `true` iff this is the additive identity.
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Interpret the residue as a signed integer in
    /// `[-(q-1)/2, (q-1)/2]` — the demapping `φ⁻¹` of the paper
    /// (Eq. 36): residues up to `(q-1)/2` (i.e. `x < q/2`) are positive,
    /// everything above wraps to the negatives. The boundary residue
    /// `(q-1)/2` itself is a *legal positive* value — excluding it would
    /// corrupt the maximum-magnitude aggregate to `-(q+1)/2`.
    fn to_signed(self) -> i64 {
        let r = self.residue();
        let half = (Self::MODULUS - 1) / 2;
        if r <= half {
            r as i64
        } else {
            r as i64 - Self::MODULUS as i64
        }
    }
}

/// Deterministically derives `count` distinct non-zero evaluation points.
///
/// Vandermonde-based MDS matrices require pairwise-distinct, non-zero
/// points; `1, 2, …, count` are guaranteed distinct whenever
/// `count < q`, which always holds for the protocol sizes of interest
/// (`count ≤ N ≪ q`).
///
/// # Panics
///
/// Panics if `count >= F::MODULUS` (cannot produce that many distinct
/// non-zero points).
pub fn evaluation_points<F: Field>(count: usize) -> Vec<F> {
    assert!(
        (count as u64) < F::MODULUS,
        "cannot derive {count} distinct points in a field of size {}",
        F::MODULUS
    );
    (1..=count as u64).map(F::from_u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_points_are_distinct_and_nonzero() {
        let pts = evaluation_points::<Fp32>(64);
        assert_eq!(pts.len(), 64);
        for (i, p) in pts.iter().enumerate() {
            assert!(!p.is_zero());
            for q in &pts[i + 1..] {
                assert_ne!(p, q);
            }
        }
    }

    #[test]
    fn signed_roundtrip() {
        for v in [-5i64, -1, 0, 1, 5, 1000, -1000] {
            assert_eq!(Fp32::from_i64(v).to_signed(), v);
            assert_eq!(Fp61::from_i64(v).to_signed(), v);
        }
    }

    /// Eq. (36) boundary regression: the residue `(q−1)/2` satisfies
    /// `x < q/2` and must decode as the maximum *positive* value, not
    /// wrap to `−(q+1)/2`; `(q+1)/2` is the first negative residue and
    /// `q−1` is `−1`.
    fn signed_boundary<F: Field>() {
        let half = (F::MODULUS - 1) / 2;
        assert_eq!(F::from_u64(half).to_signed(), half as i64);
        assert_eq!(F::from_u64(half + 1).to_signed(), -(half as i64));
        assert_eq!(F::from_u64(F::MODULUS - 1).to_signed(), -1);
        // and both extremes round-trip through from_i64
        assert_eq!(F::from_i64(half as i64).to_signed(), half as i64);
        assert_eq!(F::from_i64(-(half as i64)).to_signed(), -(half as i64));
    }

    #[test]
    fn signed_boundary_fp32() {
        signed_boundary::<Fp32>();
    }

    #[test]
    fn signed_boundary_fp61() {
        signed_boundary::<Fp61>();
    }
}
