//! Dependency-free fork-join parallelism over [`std::thread::scope`].
//!
//! The protocol's hot paths — bulk field kernels over `d`-length vectors
//! and the per-group one-shot recoveries of a grouped topology — are
//! embarrassingly parallel. This module provides the two shapes they
//! need without pulling in a thread-pool crate:
//!
//! * [`par_chunks_mut`] — split one mutable slice into contiguous
//!   per-worker ranges (data parallelism over `d`);
//! * [`par_map`] / [`par_map_mut`] — map a function over independent
//!   tasks (task parallelism over groups).
//!
//! # Thread count
//!
//! The worker count comes from the `LSA_THREADS` environment variable
//! (read once per process), falling back to
//! [`std::thread::available_parallelism`]. `LSA_THREADS=1` forces every
//! helper to run inline on the caller's thread. Tests and benches can
//! scope an override with [`with_threads`] without touching the
//! environment.
//!
//! # Determinism
//!
//! Every helper is bit-deterministic across thread counts: work is
//! partitioned into contiguous ranges, each output element is computed
//! independently with a fixed reduction order, and results land in
//! caller-owned slots — no worker ever observes another's output. A
//! kernel called *from inside* a worker runs serially (nested forking is
//! suppressed), so a parallel group decode never oversubscribes the
//! machine.

use std::cell::Cell;
use std::sync::OnceLock;

/// Below this many elements, forking costs more than it saves and
/// [`par_chunks_mut`] runs inline.
pub const MIN_PAR_LEN: usize = 1 << 15;

fn env_threads() -> usize {
    static GLOBAL: OnceLock<usize> = OnceLock::new();
    *GLOBAL.get_or_init(|| {
        std::env::var("LSA_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(usize::from)
                    .unwrap_or(1)
            })
    })
}

thread_local! {
    /// Scoped override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set on worker threads so nested kernels run serially.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// The worker count parallel helpers will use on this thread: 1 inside
/// a worker (no nested forking), else the [`with_threads`] override,
/// else `LSA_THREADS`, else the machine's available parallelism.
pub fn num_threads() -> usize {
    if IN_POOL.with(Cell::get) {
        return 1;
    }
    OVERRIDE.with(Cell::get).unwrap_or_else(env_threads)
}

/// Run `f` with the thread count pinned to `n` on the current thread
/// (restored on exit, even across panics). Lets tests and benches
/// compare serial against parallel execution inside one process.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(n.max(1)))));
    f()
}

fn mark_worker() {
    IN_POOL.with(|c| c.set(true));
}

/// Thread state a forked worker inherits from the forking thread: the
/// worker flag (suppresses nested forking) plus the caller's scoped
/// [`crate::simd::with_backend`] pin, so a kernel forced onto one
/// backend stays on it across the pool.
fn mark_worker_from(simd_pin: Option<crate::simd::Backend>) {
    mark_worker();
    crate::simd::set_override(simd_pin);
}

/// Apply `f(start_offset, sub_slice)` over contiguous partitions of
/// `data`, forked across the configured worker count.
///
/// The partition only decides *who* computes which range; as long as `f`
/// computes each element independently (true of every kernel in
/// [`crate::ops`]), the output is bit-identical for any thread count.
/// Slices shorter than [`MIN_PAR_LEN`] run inline.
pub fn par_chunks_mut<T, F>(data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let workers = num_threads().min(data.len());
    if workers <= 1 || data.len() < MIN_PAR_LEN {
        f(0, data);
        return;
    }
    let n = data.len();
    let base = n / workers;
    let extra = n % workers;
    let simd_pin = crate::simd::current_override();
    std::thread::scope(|s| {
        let mut rest = data;
        let mut offset = 0;
        for w in 0..workers {
            let take = base + usize::from(w < extra);
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let f = &f;
            let start = offset;
            s.spawn(move || {
                mark_worker_from(simd_pin);
                f(start, head);
            });
            offset += take;
        }
    });
}

/// Map `f` over independent read-only tasks, preserving order.
///
/// Tasks are dealt to workers in contiguous blocks; results are written
/// into per-task slots, so the output order (and content) never depends
/// on the thread count.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = num_threads().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let base = items.len() / workers;
    let extra = items.len() % workers;
    let simd_pin = crate::simd::current_override();
    std::thread::scope(|s| {
        let mut items_rest = items;
        let mut out_rest = &mut out[..];
        for w in 0..workers {
            let take = base + usize::from(w < extra);
            let (ih, it) = items_rest.split_at(take);
            let (oh, ot) = out_rest.split_at_mut(take);
            items_rest = it;
            out_rest = ot;
            let f = &f;
            s.spawn(move || {
                mark_worker_from(simd_pin);
                for (item, slot) in ih.iter().zip(oh) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

/// Map `f` over independent *mutable* tasks, preserving order — the
/// shape of a grouped topology's per-group recoveries, where each task
/// owns one group's server state.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let workers = num_threads().min(items.len());
    if workers <= 1 {
        return items.iter_mut().map(f).collect();
    }
    let n = items.len();
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let base = n / workers;
    let extra = n % workers;
    let simd_pin = crate::simd::current_override();
    std::thread::scope(|s| {
        let mut items_rest = items;
        let mut out_rest = &mut out[..];
        for w in 0..workers {
            let take = base + usize::from(w < extra);
            let (ih, it) = items_rest.split_at_mut(take);
            let (oh, ot) = out_rest.split_at_mut(take);
            items_rest = it;
            out_rest = ot;
            let f = &f;
            s.spawn(move || {
                mark_worker_from(simd_pin);
                for (item, slot) in ih.iter_mut().zip(oh) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = num_threads();
        with_threads(3, || assert_eq!(num_threads(), 3));
        assert_eq!(num_threads(), outer);
    }

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        // above MIN_PAR_LEN so the forked path actually runs
        let mut data = vec![0u64; MIN_PAR_LEN + 17];
        with_threads(4, || {
            par_chunks_mut(&mut data, |offset, chunk| {
                for (i, x) in chunk.iter_mut().enumerate() {
                    *x += (offset + i) as u64;
                }
            });
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let got = with_threads(4, || par_map(&items, |&x| x * 2));
        assert_eq!(got, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_mut_mutates_in_place_and_maps() {
        let mut items: Vec<usize> = (0..37).collect();
        let got = with_threads(4, || {
            par_map_mut(&mut items, |x| {
                *x += 1;
                *x * 10
            })
        });
        assert_eq!(items, (1..38).collect::<Vec<_>>());
        assert_eq!(got, (1..38).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_parallelism_is_suppressed() {
        let inner_counts = AtomicUsize::new(0);
        let mut tasks = vec![(); 8];
        with_threads(4, || {
            par_map_mut(&mut tasks, |()| {
                inner_counts.fetch_max(num_threads(), Ordering::Relaxed);
            });
        });
        assert_eq!(inner_counts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn empty_and_tiny_inputs_run_inline() {
        let mut empty: Vec<u64> = Vec::new();
        par_chunks_mut(&mut empty, |_, _| {});
        let got: Vec<u64> = par_map(&Vec::<u64>::new(), |&x| x);
        assert!(got.is_empty());
    }
}
