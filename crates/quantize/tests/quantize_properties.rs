//! Property-based tests of quantization invariants (Lemma 2 of the
//! paper: unbiasedness and bounded variance, plus exact linearity of the
//! field embedding).

use lsa_field::{Field, Fp32, Fp61};
use lsa_quantize::{stochastic_round, StalenessFn, VectorQuantizer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Quantize `clients` copies of bounded vectors, sum them in the field,
/// and check the sum dequantizes *exactly* to the integer-grid sum —
/// valid whenever `N·(c·max|x| + 1) ≤ (q−1)/2` (the documented
/// wrap-around bound, inclusive at the boundary per Eq. 36).
fn exact_aggregation_roundtrip<F: Field>(clients: usize, xs: &[f64], c: u64, seed: u64) {
    let q = VectorQuantizer::new(c);
    let mut rng = StdRng::seed_from_u64(seed);
    let bound = xs.iter().fold(0.0f64, |m, x| m.max(x.abs()));
    assert!(
        (clients as f64) * (bound * c as f64 + 1.0) <= ((F::MODULUS - 1) / 2) as f64,
        "test parameters must respect the wrap-around bound"
    );
    let mut field_sum = vec![F::ZERO; xs.len()];
    let mut int_sum = vec![0i64; xs.len()];
    for _ in 0..clients {
        let vs: Vec<F> = q.quantize(xs, &mut rng);
        for (k, v) in vs.iter().enumerate() {
            // each summand is small, so its signed demapping is exact
            int_sum[k] += v.to_signed();
        }
        field_sum = lsa_field::ops::add(&field_sum, &vs);
    }
    let back = q.dequantize_sum(&field_sum, 1);
    for k in 0..xs.len() {
        assert_eq!(field_sum[k].to_signed(), int_sum[k], "coordinate {k}");
        assert_eq!(back[k], int_sum[k] as f64 / c as f64, "coordinate {k}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Q_c lands on one of the two neighbouring grid points.
    #[test]
    fn rounding_lands_on_adjacent_grid(
        x in -1e6f64..1e6,
        c_bits in 0u32..20,
        seed in any::<u64>(),
    ) {
        let c = 1u64 << c_bits;
        let mut rng = StdRng::seed_from_u64(seed);
        let r = stochastic_round(x, c, &mut rng);
        let scaled = x * c as f64;
        prop_assert!(r as f64 >= scaled.floor() - 0.5);
        prop_assert!(r as f64 <= scaled.floor() + 1.5);
    }

    /// Dequantize(quantize(x)) is within one grid step of x.
    #[test]
    fn roundtrip_error_within_grid(
        xs in proptest::collection::vec(-100.0f64..100.0, 1..32),
        c_bits in 4u32..24,
        seed in any::<u64>(),
    ) {
        let q = VectorQuantizer::new(1u64 << c_bits);
        let mut rng = StdRng::seed_from_u64(seed);
        let vs: Vec<Fp61> = q.quantize(&xs, &mut rng);
        let back = q.dequantize(&vs);
        let step = 1.0 / (1u64 << c_bits) as f64;
        for (x, y) in xs.iter().zip(&back) {
            prop_assert!((x - y).abs() <= step + 1e-12);
        }
    }

    /// Field-sum of quantized vectors dequantizes to ≈ the real sum
    /// (the property secure aggregation transports).
    #[test]
    fn field_sum_matches_real_sum(
        a in proptest::collection::vec(-10.0f64..10.0, 1..16),
        b in proptest::collection::vec(-10.0f64..10.0, 1..16),
        seed in any::<u64>(),
    ) {
        let n = a.len().min(b.len());
        let q = VectorQuantizer::new(1 << 16);
        let mut rng = StdRng::seed_from_u64(seed);
        let fa: Vec<Fp61> = q.quantize(&a[..n], &mut rng);
        let fb: Vec<Fp61> = q.quantize(&b[..n], &mut rng);
        let sum = lsa_field::ops::add(&fa, &fb);
        let back = q.dequantize(&sum);
        for k in 0..n {
            prop_assert!((back[k] - (a[k] + b[k])).abs() < 2.0 / 65536.0 + 1e-9);
        }
    }

    /// N-client aggregation round-trips exactly (not merely within
    /// grid error) while `N·c·max|x|` stays below `(q−1)/2` — the
    /// invariant both the `to_signed` boundary fix and the non-finite
    /// rejection protect under aggregation.
    #[test]
    fn n_client_field_sum_dequantizes_exactly(
        xs in proptest::collection::vec(-10.0f64..10.0, 1..24),
        clients in 2usize..12,
        c_bits in 4u32..17,
        seed in any::<u64>(),
    ) {
        exact_aggregation_roundtrip::<Fp61>(clients, &xs, 1u64 << c_bits, seed);
    }

    /// The same exactness holds in the small 32-bit field as long as the
    /// bound is respected (c capped so 12·(2^14·10 + 1) ≪ (q−1)/2).
    #[test]
    fn n_client_field_sum_dequantizes_exactly_fp32(
        xs in proptest::collection::vec(-10.0f64..10.0, 1..24),
        clients in 2usize..12,
        c_bits in 4u32..15,
        seed in any::<u64>(),
    ) {
        exact_aggregation_roundtrip::<Fp32>(clients, &xs, 1u64 << c_bits, seed);
    }

    /// All staleness functions stay in (0, 1] and equal 1 at τ = 0.
    #[test]
    fn staleness_range(tau in 0u64..1000, alpha in 0.1f64..4.0, a in 0.1f64..4.0, b in 0u64..20) {
        for f in [
            StalenessFn::Constant,
            StalenessFn::Poly { alpha },
            StalenessFn::Hinge { a, b },
        ] {
            let v = f.evaluate(tau);
            prop_assert!(v > 0.0 && v <= 1.0, "{f:?}({tau}) = {v}");
            prop_assert_eq!(f.evaluate(0), 1.0);
        }
    }

    /// Integer staleness weights are within one unit of c_g·s(τ).
    #[test]
    fn quantized_staleness_close(tau in 0u64..100, cg_bits in 0u32..12, seed in any::<u64>()) {
        use lsa_quantize::QuantizedStaleness;
        let cg = 1u64 << cg_bits;
        let qs = QuantizedStaleness::new(StalenessFn::Poly { alpha: 1.0 }, cg);
        let mut rng = StdRng::seed_from_u64(seed);
        let w = qs.integer_weight(tau, &mut rng) as f64;
        let exact = cg as f64 * (1.0 / (1.0 + tau as f64));
        prop_assert!((w - exact).abs() <= 1.0);
    }
}

/// The wrap-around bound is *tight*: an aggregate landing exactly on the
/// residue `(q−1)/2` is still the legal maximum positive value (the
/// `to_signed` boundary fix), and one unit more wraps negative.
fn wraparound_bound_is_tight<F: Field>() {
    let half = (F::MODULUS - 1) / 2;
    let q = VectorQuantizer::new(1);
    // sum of positive quantized contributions reaching exactly (q−1)/2
    let at_bound = F::from_u64(half - 1) + F::ONE;
    assert_eq!(at_bound.to_signed(), half as i64);
    assert_eq!(q.dequantize(&[at_bound])[0], half as f64);
    // one more unit crosses q/2 and must wrap to the negatives
    let over = at_bound + F::ONE;
    assert_eq!(over.to_signed(), -(half as i64));
    assert!(q.dequantize(&[over])[0] < 0.0);
}

#[test]
fn wraparound_bound_tight_fp32() {
    wraparound_bound_is_tight::<Fp32>();
}

#[test]
fn wraparound_bound_tight_fp61() {
    wraparound_bound_is_tight::<Fp61>();
}
