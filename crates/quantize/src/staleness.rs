//! Staleness-compensation functions for buffered asynchronous FL.
//!
//! In asynchronous FL the server down-weights stale updates by `s(τ)`
//! where `τ = t − t_i` is the staleness (Eq. 26 of the paper). For secure
//! aggregation the weighting must happen *inside the field*, so Eq. (34)
//! quantizes `s(τ)` to the integer `s_{c_g}(τ) = c_g·Q_{c_g}(s(τ))`.

use crate::stochastic_round;
use lsa_field::Field;
use rand::Rng;

/// The staleness weighting strategies evaluated in the paper
/// (Figures 7 and 11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StalenessFn {
    /// `s(τ) = 1` — no compensation ("Constant" in Fig. 7).
    Constant,
    /// `s_α(τ) = (1 + τ)^{−α}` — polynomial decay ("Poly", α = 1 in the
    /// paper's experiments).
    Poly {
        /// Decay exponent `α > 0`.
        alpha: f64,
    },
    /// Hinge: `1` for `τ ≤ b`, else `1/(a(τ−b)+1)` (Xie et al. 2019).
    Hinge {
        /// Slope parameter `a > 0`.
        a: f64,
        /// Grace period `b ≥ 0`.
        b: u64,
    },
}

impl StalenessFn {
    /// Evaluate `s(τ)` in the reals.
    ///
    /// All variants satisfy `s(0) = 1` and are monotone non-increasing.
    pub fn evaluate(&self, tau: u64) -> f64 {
        match *self {
            StalenessFn::Constant => 1.0,
            StalenessFn::Poly { alpha } => (1.0 + tau as f64).powf(-alpha),
            StalenessFn::Hinge { a, b } => {
                if tau <= b {
                    1.0
                } else {
                    1.0 / (a * (tau - b) as f64 + 1.0)
                }
            }
        }
    }
}

/// The field-quantized staleness function of Eq. (34).
///
/// Produces integers `s_{c_g}(τ) = c_g·Q_{c_g}(s(τ))` embedded in the
/// field, plus the real-domain normalizer `Σ Q_{c_g}(s(τ_i))` needed by
/// the global update rule (Eq. 37).
#[derive(Debug, Clone, Copy)]
pub struct QuantizedStaleness {
    function: StalenessFn,
    cg: u64,
}

impl QuantizedStaleness {
    /// Create with quantization level `c_g ≥ 1` (the paper uses `c_g = 2^6`).
    ///
    /// # Panics
    ///
    /// Panics if `cg == 0`.
    pub fn new(function: StalenessFn, cg: u64) -> Self {
        assert!(cg >= 1, "staleness quantization level must be at least 1");
        Self { function, cg }
    }

    /// The quantization level `c_g`.
    pub fn level(&self) -> u64 {
        self.cg
    }

    /// The underlying real-domain staleness function.
    pub fn function(&self) -> StalenessFn {
        self.function
    }

    /// The integer weight `c_g·Q_{c_g}(s(τ))`.
    ///
    /// `s(τ) ∈ (0, 1]` so the result is in `[0, c_g]`; stochastic rounding
    /// keeps it unbiased.
    pub fn integer_weight<R: Rng + ?Sized>(&self, tau: u64, rng: &mut R) -> u64 {
        let w = stochastic_round(self.function.evaluate(tau), self.cg, rng);
        debug_assert!(w >= 0);
        w as u64
    }

    /// The weight as a field element.
    pub fn field_weight<F: Field, R: Rng + ?Sized>(&self, tau: u64, rng: &mut R) -> F {
        F::from_u64(self.integer_weight(tau, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_field::Fp61;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_variants_are_one_at_zero() {
        for f in [
            StalenessFn::Constant,
            StalenessFn::Poly { alpha: 1.0 },
            StalenessFn::Hinge { a: 0.5, b: 3 },
        ] {
            assert_eq!(f.evaluate(0), 1.0);
        }
    }

    #[test]
    fn poly_matches_paper_formula() {
        let f = StalenessFn::Poly { alpha: 1.0 };
        for tau in 0..20u64 {
            assert!((f.evaluate(tau) - 1.0 / (1.0 + tau as f64)).abs() < 1e-15);
        }
    }

    #[test]
    fn monotone_non_increasing() {
        for f in [
            StalenessFn::Constant,
            StalenessFn::Poly { alpha: 0.5 },
            StalenessFn::Poly { alpha: 2.0 },
            StalenessFn::Hinge { a: 1.0, b: 2 },
        ] {
            let mut prev = f.evaluate(0);
            for tau in 1..30 {
                let cur = f.evaluate(tau);
                assert!(cur <= prev + 1e-15, "{f:?} at {tau}");
                prev = cur;
            }
        }
    }

    #[test]
    fn integer_weight_bounded_by_cg() {
        let mut rng = StdRng::seed_from_u64(1);
        let qs = QuantizedStaleness::new(StalenessFn::Poly { alpha: 1.0 }, 64);
        for tau in 0..50 {
            let w = qs.integer_weight(tau, &mut rng);
            assert!(w <= 64);
        }
    }

    #[test]
    fn quantized_weight_unbiased() {
        let mut rng = StdRng::seed_from_u64(2);
        let qs = QuantizedStaleness::new(StalenessFn::Poly { alpha: 1.0 }, 64);
        let tau = 3u64; // s = 0.25 → c_g·s = 16 exactly representable
        for _ in 0..50 {
            assert_eq!(qs.integer_weight(tau, &mut rng), 16);
        }
        // non-representable value: average ≈ c_g·s
        let tau = 2u64; // s = 1/3, c_g·s = 21.33
        let n = 30_000;
        let sum: u64 = (0..n).map(|_| qs.integer_weight(tau, &mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 64.0 / 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn field_weight_matches_integer() {
        let mut rng1 = StdRng::seed_from_u64(3);
        let mut rng2 = StdRng::seed_from_u64(3);
        let qs = QuantizedStaleness::new(StalenessFn::Constant, 8);
        let fi: Fp61 = qs.field_weight(5, &mut rng1);
        let ii = qs.integer_weight(5, &mut rng2);
        assert_eq!(fi.residue(), ii);
    }
}
