//! Quantization between real-valued model updates and the finite field.
//!
//! Secure aggregation operates in `F_q`, but model updates live in `R^d`.
//! Appendix F.3.2 of the LightSecAgg paper bridges the two with
//!
//! 1. a **stochastic rounding** function `Q_c` (Eq. 29) — unbiased,
//!    variance `≤ 1/(4c²)` per coordinate (Lemma 2);
//! 2. a **two's-complement mapping** `φ : R → F_q` (Eq. 31) embedding
//!    negative integers as `q + x`, inverted by `φ⁻¹` (Eq. 36);
//! 3. a **quantized staleness function** `s_{c_g}(τ) = c_g·Q_{c_g}(s(τ))`
//!    (Eq. 34) so the server can weight buffered async updates inside the
//!    field.
//!
//! # Example
//!
//! ```
//! use lsa_quantize::{StalenessFn, VectorQuantizer};
//! use lsa_field::Fp61;
//! use rand::SeedableRng;
//!
//! let quantizer = VectorQuantizer::new(1 << 16);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let update = vec![0.25f64, -1.5, 0.0, 3.125];
//! let field: Vec<Fp61> = quantizer.quantize(&update, &mut rng);
//! let back = quantizer.dequantize(&field);
//! for (orig, rec) in update.iter().zip(&back) {
//!     assert!((orig - rec).abs() < 1e-4);
//! }
//! let weight = StalenessFn::Poly { alpha: 1.0 }.evaluate(4);
//! assert!((weight - 0.2).abs() < 1e-12);
//! ```

pub mod staleness;

pub use staleness::{QuantizedStaleness, StalenessFn};

use core::fmt;
use lsa_field::Field;
use rand::Rng;

/// Errors produced by the quantization layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantizeError {
    /// A gradient coordinate was NaN, ±∞, or so large that `c·x`
    /// overflows the integer grid. None of these may reach the field
    /// embedding: the saturating `as i64` cast would map them to
    /// `i64::MIN`/`i64::MAX`/0 and silently poison the masked sum —
    /// undetectable once aggregated under the mask. (The grid bound is
    /// checked on the *scaled* value `c·x`: `x` itself being finite is
    /// not enough, since the product can still overflow.)
    NonFinite {
        /// Index of the offending coordinate within its vector (0 for a
        /// scalar rounding).
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for QuantizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantizeError::NonFinite { index, value } => {
                write!(f, "non-finite gradient coordinate {value} at index {index}")
            }
        }
    }
}

impl std::error::Error for QuantizeError {}

/// Stochastic rounding `Q_c` of Eq. (29): rounds `x` to the grid `Z/c`,
/// choosing the upper neighbour with probability equal to the fractional
/// part, so that `E[Q_c(x)] = x`.
///
/// Returns the *integer* `c·Q_c(x)` (i.e. `⌊cx⌋` or `⌊cx⌋+1`), which is
/// what gets embedded into the field.
///
/// # Errors
///
/// Returns [`QuantizeError::NonFinite`] for NaN or ±∞ inputs — and for
/// finite inputs whose *scaled* value `c·x` leaves the exactly-castable
/// `i64` range (`|c·x| ≥ 2^62`): either way there is no grid neighbour,
/// and the previous behaviour (a saturating float-to-int cast) embedded
/// garbage into the field undetectably.
pub fn try_stochastic_round<R: Rng + ?Sized>(
    x: f64,
    c: u64,
    rng: &mut R,
) -> Result<i64, QuantizeError> {
    let scaled = x * c as f64;
    // the product is what gets cast: x alone being finite is not enough
    // (x = 1e308, c = 2^16 scales to +inf; x = 1e30 saturates the cast)
    if !scaled.is_finite() || scaled.abs() >= (1i64 << 62) as f64 {
        return Err(QuantizeError::NonFinite { index: 0, value: x });
    }
    let floor = scaled.floor();
    let frac = scaled - floor;
    let base = floor as i64;
    if rng.gen::<f64>() < frac {
        Ok(base + 1)
    } else {
        Ok(base)
    }
}

/// Infallible façade over [`try_stochastic_round`] for trusted inputs.
///
/// # Panics
///
/// Panics on NaN or ±∞ — a poisoned gradient is a training bug, and
/// failing loudly here beats corrupting the secure aggregate (use
/// [`try_stochastic_round`] to handle it as a typed error instead).
pub fn stochastic_round<R: Rng + ?Sized>(x: f64, c: u64, rng: &mut R) -> i64 {
    try_stochastic_round(x, c, rng).expect("finite gradient coordinate")
}

/// A quantizer with fixed scaling level `c` (the paper's `c_l`).
///
/// Larger `c` means finer grids (rounding variance `d/(4c²)` over a
/// `d`-dimensional vector) but a larger magnitude in the field, i.e. a
/// higher risk of wrap-around when many updates are summed — the trade-off
/// shown in Figure 12 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorQuantizer {
    c: u64,
}

impl VectorQuantizer {
    /// Create a quantizer with level `c ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `c == 0`.
    pub fn new(c: u64) -> Self {
        assert!(c >= 1, "quantization level must be at least 1");
        Self { c }
    }

    /// The quantization level `c`.
    pub fn level(&self) -> u64 {
        self.c
    }

    /// Quantize a real vector into the field: `φ(c·Q_c(x_k))` per
    /// coordinate, rejecting non-finite coordinates with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`QuantizeError::NonFinite`] (with the coordinate index)
    /// if any input is NaN or ±∞.
    pub fn try_quantize<F: Field, R: Rng + ?Sized>(
        &self,
        xs: &[f64],
        rng: &mut R,
    ) -> Result<Vec<F>, QuantizeError> {
        xs.iter()
            .enumerate()
            .map(|(index, &x)| {
                try_stochastic_round(x, self.c, rng)
                    .map(F::from_i64)
                    .map_err(|_| QuantizeError::NonFinite { index, value: x })
            })
            .collect()
    }

    /// Infallible façade over [`Self::try_quantize`] for trusted inputs.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is NaN or ±∞ (see [`stochastic_round`]).
    pub fn quantize<F: Field, R: Rng + ?Sized>(&self, xs: &[f64], rng: &mut R) -> Vec<F> {
        self.try_quantize(xs, rng).expect("finite gradient vector")
    }

    /// Dequantize a field vector produced by [`Self::quantize`]:
    /// `φ⁻¹(v_k)/c` per coordinate.
    pub fn dequantize<F: Field>(&self, vs: &[F]) -> Vec<f64> {
        self.dequantize_sum(vs, 1)
    }

    /// Dequantize an *aggregate* of `count` quantized vectors (optionally
    /// staleness-weighted): `φ⁻¹(v_k) / (c · divisor)`.
    ///
    /// `divisor` absorbs extra integer scaling such as the `c_g` staleness
    /// factor of Eq. (35); pass `1` when none applies.
    pub fn dequantize_sum<F: Field>(&self, vs: &[F], divisor: u64) -> Vec<f64> {
        let scale = (self.c as f64) * (divisor as f64);
        vs.iter().map(|v| v.to_signed() as f64 / scale).collect()
    }

    /// The largest per-coordinate magnitude that `count` summed updates
    /// may reach before wrap-around, given each real coordinate is bounded
    /// by `bound`.
    ///
    /// Useful for asserting `q` is large enough:
    /// `count · (bound·c + 1) < (q−1)/2`.
    pub fn wraparound_headroom<F: Field>(&self, bound: f64, count: usize) -> f64 {
        let max_mag = (bound * self.c as f64 + 1.0) * count as f64;
        let half_field = (F::MODULUS - 1) as f64 / 2.0;
        half_field - max_mag
    }

    /// Pick the finest power-of-two level that still avoids wrap-around
    /// when `count` updates bounded by `bound` are aggregated in field
    /// `F` — the trade-off the paper resolves empirically in Figure 12
    /// and suggests auto-tuning for (Appendix F.5, citing Bonawitz et
    /// al. 2019c). A safety factor of 2 is reserved.
    ///
    /// Returns `None` when even `c = 1` would wrap (field too small for
    /// the workload).
    pub fn auto_tune<F: Field>(bound: f64, count: usize) -> Option<Self> {
        for bits in (0..=F::BITS.min(62)).rev() {
            let candidate = Self::new(1u64 << bits);
            if candidate.wraparound_headroom::<F>(bound, count) > (F::MODULUS / 2) as f64 / 2.0 {
                return Some(candidate);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_field::{Fp32, Fp61};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_grid_points_round_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        // 0.5 with c=2 is exactly on the grid: c*x = 1
        for _ in 0..100 {
            assert_eq!(stochastic_round(0.5, 2, &mut rng), 1);
            assert_eq!(stochastic_round(-0.5, 2, &mut rng), -1);
            assert_eq!(stochastic_round(3.0, 4, &mut rng), 12);
        }
    }

    #[test]
    fn rounding_is_unbiased_empirically() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = 0.3;
        let c = 1;
        let n = 200_000;
        let sum: i64 = (0..n).map(|_| stochastic_round(x, c, &mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 0.3).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn negative_values_embed_correctly() {
        let mut rng = StdRng::seed_from_u64(3);
        let q = VectorQuantizer::new(4);
        let vs: Vec<Fp32> = q.quantize(&[-1.0], &mut rng);
        // −1.0 * 4 = −4 exactly
        assert_eq!(vs[0].to_signed(), -4);
        assert_eq!(q.dequantize(&vs)[0], -1.0);
    }

    #[test]
    fn quantize_dequantize_error_bound() {
        let mut rng = StdRng::seed_from_u64(4);
        let q = VectorQuantizer::new(1 << 12);
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 - 500.0) / 77.0).collect();
        let vs: Vec<Fp61> = q.quantize(&xs, &mut rng);
        let back = q.dequantize(&vs);
        for (x, y) in xs.iter().zip(&back) {
            assert!((x - y).abs() <= 1.0 / (1 << 12) as f64 + 1e-12);
        }
    }

    #[test]
    fn aggregate_of_quantized_updates_dequantizes_to_sum() {
        // The end-to-end property secure aggregation relies on: sum in the
        // field ≈ sum of the reals.
        let mut rng = StdRng::seed_from_u64(5);
        let q = VectorQuantizer::new(1 << 16);
        let a = vec![0.7, -2.3, 1.1];
        let b = vec![-0.4, 0.9, 2.2];
        let fa: Vec<Fp61> = q.quantize(&a, &mut rng);
        let fb: Vec<Fp61> = q.quantize(&b, &mut rng);
        let sum: Vec<Fp61> = lsa_field::ops::add(&fa, &fb);
        let back = q.dequantize(&sum);
        for ((x, y), s) in a.iter().zip(&b).zip(&back) {
            assert!((x + y - s).abs() < 1e-3);
        }
    }

    #[test]
    fn headroom_positive_for_sane_parameters() {
        let q = VectorQuantizer::new(1 << 16);
        // 100 users, coordinates bounded by 10.0: fits in both fields
        assert!(q.wraparound_headroom::<Fp61>(10.0, 100) > 0.0);
        assert!(q.wraparound_headroom::<Fp32>(10.0, 100) > 0.0);
        // At c_l = 2^24 the 32-bit field wraps — the degradation Fig. 12
        // shows for large c_l — while the 61-bit field still has room.
        let q_fine = VectorQuantizer::new(1 << 24);
        assert!(q_fine.wraparound_headroom::<Fp32>(10.0, 100) < 0.0);
        assert!(q_fine.wraparound_headroom::<Fp61>(10.0, 100) > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_level_panics() {
        let _ = VectorQuantizer::new(0);
    }

    #[test]
    fn non_finite_inputs_rejected_with_typed_error() {
        let mut rng = StdRng::seed_from_u64(6);
        // 1e308 is finite but 1e308·2^16 overflows to +∞; 1e30·2^16 is
        // finite yet saturates the i64 cast — both must be rejected, not
        // silently embedded as i64::MAX
        for bad in [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e308,
            1e30,
            -1e30,
        ] {
            let err = try_stochastic_round(bad, 1 << 16, &mut rng).unwrap_err();
            assert!(matches!(err, QuantizeError::NonFinite { index: 0, .. }));
        }
        // the vector path reports the offending coordinate
        let q = VectorQuantizer::new(1 << 16);
        let err = q
            .try_quantize::<Fp61, _>(&[0.5, f64::NAN, 1.0], &mut rng)
            .unwrap_err();
        assert!(matches!(err, QuantizeError::NonFinite { index: 1, .. }));
        // finite inputs still round-trip through the fallible path
        let ok = q.try_quantize::<Fp61, _>(&[0.5, -0.25], &mut rng).unwrap();
        assert_eq!(q.dequantize(&ok), vec![0.5, -0.25]);
    }

    #[test]
    #[should_panic(expected = "finite gradient")]
    fn infallible_quantize_panics_on_nan_instead_of_poisoning() {
        let mut rng = StdRng::seed_from_u64(7);
        let q = VectorQuantizer::new(1 << 16);
        let _ = q.quantize::<Fp61, _>(&[f64::NAN], &mut rng);
    }

    #[test]
    fn auto_tune_picks_safe_level() {
        // Fp61, 100 users, bound 10: plenty of room — should pick a fine
        // grid that still leaves half-field headroom
        let q = VectorQuantizer::auto_tune::<Fp61>(10.0, 100).expect("fits");
        assert!(q.level() >= 1 << 16, "level {}", q.level());
        assert!(q.wraparound_headroom::<Fp61>(10.0, 100) > 0.0);

        // Fp32 with the same workload must choose a coarser grid than
        // Fp61 (fewer bits of headroom)
        let q32 = VectorQuantizer::auto_tune::<Fp32>(10.0, 100).expect("fits");
        assert!(q32.level() < q.level());

        // an absurd workload does not fit at all
        assert!(VectorQuantizer::auto_tune::<Fp32>(1e12, 1_000_000).is_none());
    }
}
